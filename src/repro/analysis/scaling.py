"""Scaling-law fitting for finite-size theorem checks.

The paper's statements are asymptotic (`O(k²/√n)`, `O(n/2^{k/2})`, …).
DESIGN.md §4 commits to checking them as *scaling laws*: fit the measured
series against the predicted functional form and report the exponent/rate
and the fitted constant.  These helpers implement the three fits the
experiments need — power laws, exponential decays, and bound-dominance
with a fitted constant — with small-sample-friendly least squares in log
space.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "PowerLawFit",
    "ExponentialFit",
    "fit_power_law",
    "fit_exponential_decay",
    "dominance_constant",
    "is_dominated",
]


@dataclass(frozen=True)
class PowerLawFit:
    """``y ≈ coefficient · x^exponent`` (fit in log–log space)."""

    exponent: float
    coefficient: float
    residual: float

    def predict(self, x: float) -> float:
        return self.coefficient * x**self.exponent


@dataclass(frozen=True)
class ExponentialFit:
    """``y ≈ coefficient · 2^(rate·x)`` (fit in semi-log space)."""

    rate: float
    coefficient: float
    residual: float

    def predict(self, x: float) -> float:
        return self.coefficient * 2.0 ** (self.rate * x)

    @property
    def halving_distance(self) -> float:
        """Increase in x that halves y (for decays, rate < 0)."""
        if self.rate == 0:
            return math.inf
        return -1.0 / self.rate


def _least_squares_line(xs: list[float], ys: list[float]) -> tuple[float, float, float]:
    """Slope, intercept, and RMS residual of a 1-D least-squares line."""
    n = len(xs)
    if n < 2:
        raise ValueError("need at least two points to fit")
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0:
        raise ValueError("x values must not all be equal")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    residual = math.sqrt(
        sum((y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys)) / n
    )
    return slope, intercept, residual


def fit_power_law(xs: list[float], ys: list[float]) -> PowerLawFit:
    """Fit ``y = c·x^a`` by least squares on ``log y`` vs ``log x``.

    All values must be strictly positive.
    """
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ValueError("power-law fits need strictly positive data")
    slope, intercept, residual = _least_squares_line(
        [math.log(x) for x in xs], [math.log(y) for y in ys]
    )
    return PowerLawFit(
        exponent=slope, coefficient=math.exp(intercept), residual=residual
    )


def fit_exponential_decay(xs: list[float], ys: list[float]) -> ExponentialFit:
    """Fit ``y = c·2^(r·x)`` by least squares on ``log₂ y`` vs ``x``."""
    if any(y <= 0 for y in ys):
        raise ValueError("exponential fits need strictly positive y data")
    slope, intercept, residual = _least_squares_line(
        list(map(float, xs)), [math.log2(y) for y in ys]
    )
    return ExponentialFit(
        rate=slope, coefficient=2.0**intercept, residual=residual
    )


def dominance_constant(measured: list[float], bound: list[float]) -> float:
    """Smallest ``c`` with ``measured[i] ≤ c·bound[i]`` for all ``i``.

    This is the fitted `O(·)` constant an experiment reports: a theorem
    "holds with constant c" when this value is ≤ c.
    """
    if len(measured) != len(bound):
        raise ValueError("series must have equal length")
    worst = 0.0
    for m, b in zip(measured, bound):
        if m < 0 or b < 0:
            raise ValueError("series must be non-negative")
        if b == 0:
            if m > 0:
                return math.inf
            continue
        worst = max(worst, m / b)
    return worst


def is_dominated(
    measured: list[float], bound: list[float], constant: float = 1.0
) -> bool:
    """True iff ``measured ≤ constant·bound`` pointwise."""
    return dominance_constant(measured, bound) <= constant
