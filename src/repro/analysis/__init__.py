"""Experiment analysis: scaling-law fits and parameter-sweep running.

These are the tools DESIGN.md §4 commits to — checking asymptotic
statements as finite-size scaling laws (fitted exponents/rates and
dominance constants) rather than absolute numbers.
"""

from .scaling import (
    ExponentialFit,
    PowerLawFit,
    dominance_constant,
    fit_exponential_decay,
    fit_power_law,
    is_dominated,
)
from .sweep import SweepPoint, SweepResult, run_sweep

__all__ = [
    "ExponentialFit",
    "PowerLawFit",
    "dominance_constant",
    "fit_exponential_decay",
    "fit_power_law",
    "is_dominated",
    "SweepPoint",
    "SweepResult",
    "run_sweep",
]
