"""Parameter-sweep runner for experiments.

A tiny, dependency-free experiment harness: declare a grid of parameter
points, a measurement function, and get back a :class:`SweepResult` that
can select series, fit scaling laws, and render markdown — the shape every
bench in ``benchmarks/`` follows, factored into the library so downstream
users can add their own experiments in the same style.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, Sequence

from ..core.engine import Executor, resolve_executor
from .scaling import ExponentialFit, PowerLawFit, fit_exponential_decay, fit_power_law

__all__ = ["SweepPoint", "SweepResult", "run_sweep"]


@dataclass(frozen=True)
class SweepPoint:
    """One grid point: the parameters and the measured values."""

    params: Mapping[str, Any]
    values: Mapping[str, float]

    def __getitem__(self, key: str) -> Any:
        if key in self.params:
            return self.params[key]
        return self.values[key]


@dataclass
class SweepResult:
    """All measured points of a sweep, with analysis conveniences."""

    points: list[SweepPoint] = field(default_factory=list)

    def series(self, x_key: str, y_key: str) -> tuple[list[float], list[float]]:
        """Extract ``(xs, ys)`` sorted by x."""
        pairs = sorted(
            (float(p[x_key]), float(p[y_key])) for p in self.points
        )
        return [x for x, _ in pairs], [y for _, y in pairs]

    def fit_power_law(self, x_key: str, y_key: str) -> PowerLawFit:
        xs, ys = self.series(x_key, y_key)
        return fit_power_law(xs, ys)

    def fit_exponential_decay(self, x_key: str, y_key: str) -> ExponentialFit:
        xs, ys = self.series(x_key, y_key)
        return fit_exponential_decay(xs, ys)

    def to_markdown(self, columns: Sequence[str]) -> str:
        """Render the sweep as a GitHub-flavoured markdown table."""
        lines = [
            "| " + " | ".join(columns) + " |",
            "|" + "|".join("---" for _ in columns) + "|",
        ]
        for point in self.points:
            cells = []
            for col in columns:
                value = point[col]
                cells.append(
                    f"{value:.4g}" if isinstance(value, float) else str(value)
                )
            lines.append("| " + " | ".join(cells) + " |")
        return "\n".join(lines)

    def column(self, key: str) -> list[Any]:
        return [p[key] for p in self.points]


class _MeasureCall:
    """Picklable ``params → measure(**params)`` wrapper for executors.

    Validates the return type here, inside the mapped call, so a bad
    ``measure`` fails on its first grid point instead of after the whole
    (possibly expensive, possibly pooled) sweep has run.
    """

    def __init__(self, measure: Callable[..., Mapping[str, float]]):
        self.measure = measure

    def __call__(self, params: Mapping[str, Any]) -> Mapping[str, float]:
        values = self.measure(**params)
        if not isinstance(values, Mapping):
            raise TypeError(
                "measure must return a mapping of named values, got "
                f"{type(values).__name__}"
            )
        return values


def run_sweep(
    grid: Iterable[Mapping[str, Any]],
    measure: Callable[..., Mapping[str, float]],
    executor: Executor | str | None = None,
    checkpoint: "str | Path | None" = None,
) -> SweepResult:
    """Run ``measure(**params)`` for every grid point.

    ``measure`` returns a mapping of measured values; parameters and
    values are kept side by side in the result.  ``executor`` selects the
    engine backend grid points run on: the default runs them serially in
    order, ``"parallel"`` / a
    :class:`~repro.core.engine.ParallelExecutor` spreads independent
    points over a process pool, and a warm
    :class:`~repro.exec.pool.WorkerPool` amortizes process start-up
    across repeated sweeps (``measure`` must be picklable for either —
    module-level functions and :func:`functools.partial` are, closures
    are not and fall back to serial with a warning).

    ``checkpoint`` names a JSONL journal (shared format with
    :class:`~repro.exec.sweep.SweepDriver`): completed points are
    appended as they are measured, and points already present are loaded
    instead of re-measured — an interrupted sweep rerun with the same
    journal recomputes nothing it already finished.  Measured values must
    then be JSON-serializable (floats are), and points run in-process one
    at a time (an explicit ``executor`` is ignored, with a
    ``RuntimeWarning``): durable per-point progress is the journaled
    path's contract.  For cross-point parallelism *with*
    journaling — plus adaptive trial counts and overlapped asynchronous
    batches — use :class:`~repro.exec.sweep.SweepDriver` directly.
    """
    grid = list(grid)
    result = SweepResult()
    if checkpoint is None:
        all_values = resolve_executor(executor).map(_MeasureCall(measure), grid)
        for params, values in zip(grid, all_values):
            result.points.append(
                SweepPoint(params=dict(params), values=dict(values))
            )
        return result

    # Journaled path: measure only the points missing from the journal,
    # appending each as it completes so an interruption loses at most the
    # point in flight.  Points run in-process one at a time — durable
    # progress is the contract here (a per-point executor.map would build
    # a one-task pool per point for nothing); SweepDriver provides
    # journaling *and* cross-point parallelism.
    from ..exec.sweep import append_journal, load_journal, params_key

    if executor is not None:
        warnings.warn(
            "run_sweep(checkpoint=...) measures points in-process for "
            "durable per-point progress; the executor is not used. "
            "Use repro.exec.SweepDriver for journaled parallel sweeps.",
            RuntimeWarning,
            stacklevel=2,
        )
    journal = load_journal(checkpoint)
    call = _MeasureCall(measure)
    for params in grid:
        values = journal.get(params_key(params))
        if values is None:
            values = call(params)
            append_journal(checkpoint, params, values)
        result.points.append(SweepPoint(params=dict(params), values=dict(values)))
    return result
