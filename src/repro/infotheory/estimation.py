"""Statistical estimation helpers: confidence intervals and advantage tests.

Empirically reproducing *lower bounds* means measuring distinguishing
advantages from finite samples.  These helpers provide the standard
machinery: Hoeffding and Wilson confidence intervals for Bernoulli means,
and a bias-aware estimator for the total-variation distance between two
sampled distributions (plug-in TV estimates are biased upward; we report
the estimate together with a concentration radius so experiments can state
"measured advantage is statistically indistinguishable from the bound").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .divergence import tv_from_counts

__all__ = [
    "ConfidenceInterval",
    "hoeffding_interval",
    "wilson_interval",
    "AdvantageEstimate",
    "estimate_advantage",
    "estimate_tv_distance",
]


@dataclass(frozen=True)
class ConfidenceInterval:
    """A point estimate with a two-sided confidence interval."""

    estimate: float
    lower: float
    upper: float
    confidence: float

    def contains(self, value: float) -> bool:
        return self.lower <= value <= self.upper

    @property
    def radius(self) -> float:
        return max(self.upper - self.estimate, self.estimate - self.lower)


def hoeffding_interval(
    mean: float, n_samples: int, confidence: float = 0.95
) -> ConfidenceInterval:
    """Hoeffding two-sided interval for a mean of [0, 1]-bounded samples."""
    if n_samples <= 0:
        raise ValueError("need a positive sample count")
    if not 0 < confidence < 1:
        raise ValueError("confidence must lie in (0, 1)")
    radius = math.sqrt(math.log(2.0 / (1.0 - confidence)) / (2.0 * n_samples))
    return ConfidenceInterval(
        estimate=mean,
        lower=max(0.0, mean - radius),
        upper=min(1.0, mean + radius),
        confidence=confidence,
    )


def wilson_interval(
    successes: int, n_samples: int, confidence: float = 0.95
) -> ConfidenceInterval:
    """Wilson score interval for a binomial proportion (better at extremes)."""
    if n_samples <= 0:
        raise ValueError("need a positive sample count")
    if not 0 <= successes <= n_samples:
        raise ValueError("successes must lie in [0, n_samples]")
    # Normal quantile for the two-sided confidence level, via the rational
    # approximation of Acklam (avoids a scipy dependency in the core library).
    z = _normal_quantile(0.5 + confidence / 2.0)
    p_hat = successes / n_samples
    denom = 1.0 + z * z / n_samples
    centre = (p_hat + z * z / (2 * n_samples)) / denom
    radius = (
        z
        * math.sqrt(p_hat * (1 - p_hat) / n_samples + z * z / (4 * n_samples**2))
        / denom
    )
    return ConfidenceInterval(
        estimate=p_hat,
        lower=max(0.0, centre - radius),
        upper=min(1.0, centre + radius),
        confidence=confidence,
    )


def _normal_quantile(p: float) -> float:
    """Inverse standard-normal CDF (Acklam's rational approximation)."""
    if not 0 < p < 1:
        raise ValueError("p must lie strictly in (0, 1)")
    a = [-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00]
    b = [-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01]
    c = [-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00]
    d = [7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00]
    p_low, p_high = 0.02425, 1 - 0.02425
    if p < p_low:
        q = math.sqrt(-2 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
        )
    if p <= p_high:
        q = p - 0.5
        r = q * q
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
            ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1
        )
    q = math.sqrt(-2 * math.log(1 - p))
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
        (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
    )


@dataclass(frozen=True)
class AdvantageEstimate:
    """Distinguishing advantage of an algorithm between two distributions.

    Following footnote 5 of the paper: an algorithm distinguishing ``D1``
    from ``D2`` with advantage ``ε`` guesses the source of a random sample
    correctly with probability ``1/2 + ε``.  Equivalently the advantage is
    ``(accept rate on D1 − accept rate on D2) / 2`` for the optimal
    orientation; we report ``|p1 − p2| / 2``.
    """

    accept_rate_d1: float
    accept_rate_d2: float
    n_samples_each: int
    confidence: float

    @property
    def advantage(self) -> float:
        return abs(self.accept_rate_d1 - self.accept_rate_d2) / 2.0

    @property
    def interval(self) -> ConfidenceInterval:
        """Hoeffding interval on the advantage (union bound on both rates)."""
        per_rate = hoeffding_interval(
            0.0, self.n_samples_each, confidence=math.sqrt(self.confidence)
        ).radius
        radius = per_rate  # |p1−p2|/2 moves by at most (r1+r2)/2 = per_rate
        return ConfidenceInterval(
            estimate=self.advantage,
            lower=max(0.0, self.advantage - radius),
            upper=min(0.5, self.advantage + radius),
            confidence=self.confidence,
        )


def estimate_advantage(
    accepts_d1: np.ndarray,
    accepts_d2: np.ndarray,
    confidence: float = 0.95,
) -> AdvantageEstimate:
    """Advantage estimate from two arrays of 0/1 accept decisions."""
    accepts_d1 = np.asarray(accepts_d1)
    accepts_d2 = np.asarray(accepts_d2)
    if accepts_d1.size == 0 or accepts_d2.size == 0:
        raise ValueError("need samples from both distributions")
    if accepts_d1.size != accepts_d2.size:
        raise ValueError("use equal sample counts for a symmetric interval")
    return AdvantageEstimate(
        accept_rate_d1=float(accepts_d1.mean()),
        accept_rate_d2=float(accepts_d2.mean()),
        n_samples_each=int(accepts_d1.size),
        confidence=confidence,
    )


def estimate_tv_distance(
    samples_p: list, samples_q: list, confidence: float = 0.95
) -> ConfidenceInterval:
    """Plug-in TV estimate between two sampled distributions.

    Outcomes may be any hashable objects (e.g. transcript encodings).  The
    plug-in estimator is upward-biased by ``O(sqrt(support / n))``; the
    returned interval uses the distribution-free Hoeffding radius on each
    empirical cdf, which is honest but conservative.
    """
    if not samples_p or not samples_q:
        raise ValueError("need samples from both distributions")
    counts_p: dict = {}
    counts_q: dict = {}
    for s in samples_p:
        counts_p[s] = counts_p.get(s, 0) + 1
    for s in samples_q:
        counts_q[s] = counts_q.get(s, 0) + 1
    estimate = tv_from_counts(counts_p, counts_q)
    n = min(len(samples_p), len(samples_q))
    radius = math.sqrt(math.log(4.0 / (1.0 - confidence)) / (2.0 * n))
    return ConfidenceInterval(
        estimate=estimate,
        lower=max(0.0, estimate - radius),
        upper=min(1.0, estimate + radius),
        confidence=confidence,
    )
