"""Information-theoretic substrate: entropy, divergences, Fourier analysis,
and estimation machinery for measuring distinguishing advantages."""

from .entropy import (
    binary_entropy,
    binary_entropy_inverse_gap,
    conditional_entropy,
    empirical_distribution,
    entropy,
    joint_entropy,
    mutual_information,
)
from .divergence import (
    bernoulli_tv,
    chain_step_bound,
    kl_divergence,
    pinsker_bound,
    total_variation,
    tv_from_counts,
)
from .fourier import (
    fourier_coefficient,
    fourier_coefficients,
    inverse_fourier,
    parseval_gap,
    truth_table,
    walsh_hadamard,
)
from .estimation import (
    AdvantageEstimate,
    ConfidenceInterval,
    estimate_advantage,
    estimate_tv_distance,
    hoeffding_interval,
    wilson_interval,
)

__all__ = [
    "binary_entropy",
    "binary_entropy_inverse_gap",
    "conditional_entropy",
    "empirical_distribution",
    "entropy",
    "joint_entropy",
    "mutual_information",
    "bernoulli_tv",
    "chain_step_bound",
    "kl_divergence",
    "pinsker_bound",
    "total_variation",
    "tv_from_counts",
    "fourier_coefficient",
    "fourier_coefficients",
    "inverse_fourier",
    "parseval_gap",
    "truth_table",
    "walsh_hadamard",
    "AdvantageEstimate",
    "ConfidenceInterval",
    "estimate_advantage",
    "estimate_tv_distance",
    "hoeffding_interval",
    "wilson_interval",
]
