"""Shannon entropy, conditional entropy and mutual information.

These are the tools of Section 2.4 of the paper, used by the statistical
inequalities (Lemmas 1.10 and 4.4): sub-additivity of entropy bounds the sum
of per-coordinate mutual informations ``I(X_i; f(X))`` by the entropy
deficiency of the input set, which Pinsker's inequality then converts into a
statistical-distance bound.

All distributions are represented as dense probability arrays (``p[i]`` is
the mass on outcome ``i``) or, for joint quantities, 2-D arrays
``p[x, y]``.  Logarithms are base 2 throughout, matching the paper.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "entropy",
    "binary_entropy",
    "binary_entropy_inverse_gap",
    "conditional_entropy",
    "joint_entropy",
    "mutual_information",
    "empirical_distribution",
]


def _validate_distribution(p: np.ndarray, tol: float = 1e-9) -> np.ndarray:
    p = np.asarray(p, dtype=float)
    if (p < -tol).any():
        raise ValueError("probabilities must be non-negative")
    total = p.sum()
    if not np.isclose(total, 1.0, atol=1e-6):
        raise ValueError(f"probabilities must sum to 1, got {total}")
    return np.clip(p, 0.0, None)


def entropy(p: np.ndarray) -> float:
    """Shannon entropy ``H(p)`` in bits.  ``0 log 0`` is taken as 0."""
    p = _validate_distribution(p)
    nz = p[p > 0]
    return float(-(nz * np.log2(nz)).sum())


def binary_entropy(p: float) -> float:
    """Entropy ``H(Ber(p))`` of a Bernoulli variable, in bits."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must lie in [0, 1], got {p}")
    if p in (0.0, 1.0):
        return 0.0
    return float(-p * np.log2(p) - (1 - p) * np.log2(1 - p))


def binary_entropy_inverse_gap(p: float) -> float:
    """The ratio ``(1 - H(p)) / (p - 1/2)^2`` from Fact 2.3.

    The paper's Fact 2.3 states that whenever ``H(p) >= 0.9`` this ratio
    lies in ``[2, 3]`` (and ``p ∈ [0.3, 0.7]``); tests verify that claim
    numerically.  Undefined at ``p = 1/2`` where both sides vanish — we
    return the limit ``2 / ln 2 ≈ 2.885``.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must lie in [0, 1], got {p}")
    gap = p - 0.5
    if abs(gap) < 1e-12:
        return 2.0 / np.log(2.0)
    return (1.0 - binary_entropy(p)) / (gap * gap)


def joint_entropy(joint: np.ndarray) -> float:
    """Entropy ``H(X, Y)`` of a joint pmf given as a 2-D array."""
    joint = np.asarray(joint, dtype=float)
    return entropy(joint.reshape(-1))


def conditional_entropy(joint: np.ndarray) -> float:
    """Conditional entropy ``H(X | Y)`` from the joint pmf ``p[x, y]``.

    Computed as ``H(X, Y) - H(Y)``.
    """
    joint = np.asarray(joint, dtype=float)
    if joint.ndim != 2:
        raise ValueError("joint pmf must be a 2-D array p[x, y]")
    marginal_y = joint.sum(axis=0)
    return joint_entropy(joint) - entropy(marginal_y)


def mutual_information(joint: np.ndarray) -> float:
    """Mutual information ``I(X; Y) = H(X) - H(X | Y)`` from ``p[x, y]``."""
    joint = np.asarray(joint, dtype=float)
    if joint.ndim != 2:
        raise ValueError("joint pmf must be a 2-D array p[x, y]")
    marginal_x = joint.sum(axis=1)
    return max(0.0, entropy(marginal_x) - conditional_entropy(joint))


def empirical_distribution(samples: np.ndarray, support: int) -> np.ndarray:
    """Plug-in pmf from integer-coded samples over ``{0, …, support-1}``."""
    samples = np.asarray(samples)
    if samples.size == 0:
        raise ValueError("need at least one sample")
    counts = np.bincount(samples, minlength=support).astype(float)
    return counts / counts.sum()
