"""Fourier analysis of Boolean functions over the hypercube.

Section 2.2 of the paper uses the Fourier expansion of ``f : {0,1}^n → R``

    f_hat(S) = E_{x ~ U_n} [ f(x) * (-1)^{sum_{i in S} x_i} ]

and Parseval's identity ``E[f(x)^2] = sum_S f_hat(S)^2``.  Lemma 5.2 — the
engine behind the PRG analysis — is a direct consequence: the sum over all
``b`` of the squared bias ``(E_{U[b]}[f] − E[f])^2`` is a sub-sum of the
Fourier weight of ``f`` and hence at most ``E[f]``.

Functions are represented as dense truth-table arrays of length ``2^n``
indexed by the integer encoding of the input (bit ``i`` of the index is
coordinate ``x_i``).  The transform is the fast Walsh–Hadamard transform,
``O(n 2^n)``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "walsh_hadamard",
    "fourier_coefficients",
    "fourier_coefficient",
    "inverse_fourier",
    "parseval_gap",
    "truth_table",
]


def walsh_hadamard(values: np.ndarray) -> np.ndarray:
    """In-place-style fast Walsh–Hadamard transform (unnormalised).

    Input length must be a power of two.  Returns
    ``out[s] = sum_x values[x] * (-1)^{popcount(x & s)}``.
    """
    values = np.asarray(values, dtype=float).copy()
    size = values.shape[0]
    if size == 0 or size & (size - 1):
        raise ValueError(f"length must be a power of two, got {size}")
    h = 1
    while h < size:
        values = values.reshape(-1, 2 * h)
        left = values[:, :h].copy()
        right = values[:, h:].copy()
        values[:, :h] = left + right
        values[:, h:] = left - right
        values = values.reshape(-1)
        h *= 2
    return values


def fourier_coefficients(truth: np.ndarray) -> np.ndarray:
    """All ``2^n`` Fourier coefficients of a function given by truth table.

    ``coeffs[s] = f_hat(S_s)`` where ``S_s`` is the subset encoded by the
    bits of ``s``.
    """
    truth = np.asarray(truth, dtype=float)
    return walsh_hadamard(truth) / truth.shape[0]


def fourier_coefficient(truth: np.ndarray, subset_mask: int) -> float:
    """Single coefficient ``f_hat(S)`` for the subset encoded by ``subset_mask``."""
    truth = np.asarray(truth, dtype=float)
    size = truth.shape[0]
    if size == 0 or size & (size - 1):
        raise ValueError(f"length must be a power of two, got {size}")
    if not 0 <= subset_mask < size:
        raise ValueError("subset mask out of range")
    x = np.arange(size, dtype=np.uint64)
    signs = 1.0 - 2.0 * (
        np.bitwise_count(x & np.uint64(subset_mask)).astype(float) % 2
    )
    return float((truth * signs).mean())


def inverse_fourier(coeffs: np.ndarray) -> np.ndarray:
    """Reconstruct the truth table from the full coefficient vector."""
    coeffs = np.asarray(coeffs, dtype=float)
    return walsh_hadamard(coeffs)


def parseval_gap(truth: np.ndarray) -> float:
    """``|E[f^2] - sum_S f_hat(S)^2|`` — zero up to float error (Parseval)."""
    truth = np.asarray(truth, dtype=float)
    coeffs = fourier_coefficients(truth)
    return abs(float((truth * truth).mean()) - float((coeffs * coeffs).sum()))


def truth_table(fn, n: int) -> np.ndarray:
    """Tabulate ``fn`` over ``{0,1}^n``; ``fn`` receives a length-``n`` 0/1
    numpy array and must return a scalar."""
    if n < 0:
        raise ValueError("n must be non-negative")
    size = 1 << n
    out = np.empty(size, dtype=float)
    for x in range(size):
        bits = np.array([(x >> i) & 1 for i in range(n)], dtype=np.uint8)
        out[x] = fn(bits)
    return out
