"""Statistical distance, KL divergence and Pinsker's inequality.

The paper measures closeness of transcript distributions in total-variation
(statistical) distance

    ||D1 - D2|| = (1/2) * sum_x |D1(x) - D2(x)|

and converts mutual-information bounds into distance bounds via Pinsker's
inequality ``||D1 - D2|| <= sqrt(D(D1 || D2) / 2)`` (Lemma 2.2).  This module
implements both, plus the decomposition Lemma 1.9 that drives every
round-by-round induction in the paper.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "total_variation",
    "tv_from_counts",
    "kl_divergence",
    "pinsker_bound",
    "chain_step_bound",
    "bernoulli_tv",
]


def total_variation(p: np.ndarray, q: np.ndarray) -> float:
    """Total-variation distance between two pmfs over the same support."""
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    if p.shape != q.shape:
        raise ValueError(f"support mismatch: {p.shape} vs {q.shape}")
    return float(0.5 * np.abs(p - q).sum())


def bernoulli_tv(p: float, q: float) -> float:
    """TV distance between ``Ber(p)`` and ``Ber(q)`` — simply ``|p - q|``."""
    return abs(p - q)


def tv_from_counts(counts_p: dict, counts_q: dict) -> float:
    """TV distance between the empirical distributions of two sample sets.

    ``counts_p`` and ``counts_q`` map outcomes (any hashable) to observed
    counts.  Useful when transcript outcomes are sparse in a huge space.
    """
    total_p = sum(counts_p.values())
    total_q = sum(counts_q.values())
    if total_p == 0 or total_q == 0:
        raise ValueError("both sample sets must be non-empty")
    support = set(counts_p) | set(counts_q)
    distance = 0.0
    for outcome in support:
        distance += abs(
            counts_p.get(outcome, 0) / total_p - counts_q.get(outcome, 0) / total_q
        )
    return 0.5 * distance


def kl_divergence(p: np.ndarray, q: np.ndarray) -> float:
    """KL divergence ``D(p || q)`` in bits; ``inf`` if ``p`` escapes ``q``'s
    support."""
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    if p.shape != q.shape:
        raise ValueError(f"support mismatch: {p.shape} vs {q.shape}")
    mask = p > 0
    if (q[mask] == 0).any():
        return float("inf")
    return float((p[mask] * np.log2(p[mask] / q[mask])).sum())


def pinsker_bound(kl_bits: float) -> float:
    """Pinsker's inequality (Lemma 2.2): ``||p - q|| <= sqrt(D(p||q)/2)``.

    The paper states divergence in bits with the ``1/2`` factor; this helper
    returns the right-hand side, clamped to the trivial bound 1.

    KL divergence is mathematically non-negative, but the floating-point
    sum in :func:`kl_divergence` can land a hair below zero for
    near-identical distributions (e.g. ``-1.6e-16``); such rounding noise
    is treated as 0 rather than rejected.
    """
    if kl_bits < 0:
        if kl_bits > -1e-9:
            kl_bits = 0.0
        else:
            raise ValueError("KL divergence cannot be negative")
    return min(1.0, float(np.sqrt(0.5 * kl_bits)))


def chain_step_bound(
    marginal_distance: float, expected_conditional_distance: float
) -> float:
    """Lemma 1.9: one chain step of the transcript induction.

    For joint distributions ``D, D'`` on ``X × Y``,

        ||D - D'|| <= ||D|_X - D'|_X|| + E_{a~D|_X} ||D_{X=a} - D'_{X=a}||.

    This helper just adds (and clamps) the two terms; it exists so that the
    induction code reads like the paper.
    """
    if marginal_distance < 0 or expected_conditional_distance < 0:
        raise ValueError("distances cannot be negative")
    return min(1.0, marginal_distance + expected_conditional_distance)
