"""Work-stealing chunk scheduling, shared by every multi-lane executor.

Both :class:`~repro.exec.pool.WorkerPool` and
:class:`~repro.exec.distributed.DistributedExecutor` face the same
problem: a batch is split into contiguous chunks, the chunks must be
spread over ``k`` lanes (pool feeder threads, remote worker
connections), and the lanes are not equally fast — a loaded host, a
5×-slower machine in a heterogeneous fleet, or plain OS jitter.  A
*static* assignment (deal chunks round-robin up front, each lane runs
only its own share) finishes when the **slowest** lane finishes its
share; the fast lanes idle.

:class:`ChunkScheduler` implements the classic fix: every lane owns a
local deque of chunks (dealt round-robin at construction, preserving
the static plan's locality), pops from its **head** while work remains,
and — once its own deque is empty — **steals from the tail** of the
richest victim.  A lane therefore never idles while any lane still has
queued work, and the batch finishes when the *work* runs out, not when
the unluckiest lane does.  ``stealing=False`` degrades to the static
plan, which is what the ``benchmarks/bench_exec_steal.py`` baseline
measures against.

Order never matters for correctness: every chunk carries its ``start``
offset, so results are written back into their original positions, and
engine trials are seeded per-spec (``SeedSequence.spawn``), so *which*
lane runs a chunk changes nothing about its output.

>>> sched = ChunkScheduler(list(range(10)), chunksize=2, lanes=2)
>>> chunk = sched.next_chunk(lane=0)
>>> chunk.start, chunk.items
(0, [0, 1])
>>> sched.mark_done(chunk)
>>> sched.pending      # 4 chunks still queued or running
4
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Sequence

from ..obs.trace import NULL_TRACER, NullTracer, Tracer

__all__ = ["Chunk", "ChunkScheduler"]


@dataclass
class Chunk:
    """A contiguous slice of a batch: ``items`` starting at ``start``.

    ``start`` is the slice's offset in the original item list, so a
    result list can be filled in place no matter which lane (or which
    retry) ultimately ran the chunk.
    """

    start: int
    items: list = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.items)


class ChunkScheduler:
    """Deal chunks to per-lane deques; idle lanes steal from the richest.

    Parameters
    ----------
    items:
        The batch, in order.  Split into ``ceil(len(items)/chunksize)``
        contiguous :class:`Chunk` objects.
    chunksize:
        Items per chunk (the work-stealing *grain*: smaller chunks
        rebalance better but pay more per-chunk overhead).
    lanes:
        Number of consumers.  Chunks are dealt round-robin over lanes at
        construction, so with ``stealing=False`` the schedule is exactly
        the static round-robin plan.
    stealing:
        When True (the default), a lane whose own deque is empty steals
        a chunk from the *tail* of the lane with the most queued chunks.
        When False, :meth:`next_chunk` returns ``None`` as soon as the
        lane's own deque is empty — the static baseline.
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`; steals and requeues
        are marked as instant events on the acting lane's track.  The
        default :data:`~repro.obs.trace.NULL_TRACER` costs nothing —
        the hot ``next_chunk`` path checks one attribute.

    Thread-safety: all methods take an internal lock; lanes are expected
    to call :meth:`next_chunk` / :meth:`mark_done` / :meth:`requeue`
    concurrently from their own threads.
    """

    def __init__(
        self,
        items: Sequence[Any],
        chunksize: int,
        lanes: int,
        stealing: bool = True,
        tracer: "Tracer | NullTracer" = NULL_TRACER,
    ):
        if chunksize < 1:
            raise ValueError("chunksize must be >= 1")
        if lanes < 1:
            raise ValueError("lanes must be >= 1")
        items = list(items)
        self.lanes = lanes
        self.stealing = stealing
        self.tracer = tracer
        chunks = [
            Chunk(start, items[start : start + chunksize])
            for start in range(0, len(items), chunksize)
        ]
        self._local: list[deque[Chunk]] = [deque() for _ in range(lanes)]
        for index, chunk in enumerate(chunks):
            self._local[index % lanes].append(chunk)
        self._lock = threading.Lock()
        self._outstanding = len(chunks)  # queued + running
        #: Telemetry: how many chunks each lane acquired by stealing.
        self.steals: list[int] = [0] * lanes
        #: Telemetry: how many chunks each lane returned unfinished
        #: (lane failure / chunk deadline) via :meth:`requeue`.
        self.requeues: list[int] = [0] * lanes

    # -- consumption ----------------------------------------------------
    def next_chunk(self, lane: int) -> Chunk | None:
        """The next chunk for ``lane``; ``None`` when it should stop.

        Pops the lane's own deque first (head: preserves the dealt
        order); when that is empty and ``stealing`` is on, steals from
        the tail of the victim with the most queued chunks.  ``None``
        means no queued chunk is available *to this lane* — with
        stealing on, that means every queue is empty (though chunks may
        still be in flight on other lanes, and a failed lane may yet
        :meth:`requeue` one).
        """
        with self._lock:
            own = self._local[lane]
            if own:
                return own.popleft()
            if self.stealing:
                victim = max(range(self.lanes), key=lambda i: len(self._local[i]))
                if not self._local[victim]:
                    return None
                self.steals[lane] += 1
                stolen = self._local[victim].pop()
            else:
                return None
        # Instant recorded outside the scheduler lock — the tracer has
        # its own; holding both invites lock-order trouble for nothing.
        if self.tracer.enabled:
            self.tracer.instant(
                "steal",
                track=f"lane-{lane}",
                victim=victim,
                start=stolen.start,
            )
        return stolen

    def mark_done(self, chunk: Chunk) -> None:
        """Record that ``chunk`` completed (its results are written)."""
        with self._lock:
            self._outstanding -= 1

    def requeue(self, chunk: Chunk, lane: int) -> None:
        """Return a chunk whose fate is unknown (its lane failed).

        The chunk goes back to the *head* of the failing lane's deque —
        with stealing on, any other lane will pick it up; the caller's
        outer dispatch loop handles the static / all-lanes-dead cases.
        """
        with self._lock:
            self.requeues[lane] += 1
            self._local[lane].appendleft(chunk)
        if self.tracer.enabled:
            self.tracer.instant(
                "requeue", track=f"lane-{lane}", start=chunk.start
            )

    def retire_lane(self, lane: int, survivors: "Sequence[int] | None" = None) -> None:
        """Spread a dead lane's queued chunks over the surviving lanes.

        Needed in static mode (nobody would ever look at the dead
        lane's deque) and harmless with stealing (it merely moves the
        chunks to where they would have been stolen from).  Pass
        ``survivors`` — the lanes still alive — whenever other lanes may
        already be dead: redistributing onto a dead lane would strand
        the chunks in static mode.  With no (other) survivor the chunks
        stay on this lane's deque, where :meth:`drain` finds them.
        """
        with self._lock:
            targets = [
                i
                for i in (survivors if survivors is not None else range(self.lanes))
                if i != lane
            ]
            if not targets:
                return  # leave the chunks in place for drain()
            orphans = list(self._local[lane])
            self._local[lane].clear()
            for index, chunk in enumerate(orphans):
                self._local[targets[index % len(targets)]].append(chunk)

    # -- accounting -----------------------------------------------------
    @property
    def pending(self) -> int:
        """Chunks not yet completed (queued on any lane or in flight)."""
        with self._lock:
            return self._outstanding

    @property
    def queued(self) -> int:
        """Chunks sitting in some lane's deque (excludes in-flight)."""
        with self._lock:
            return sum(len(q) for q in self._local)

    def drain(self) -> list[Chunk]:
        """Remove and return every queued chunk (the fallback path).

        In-flight chunks are untouched; the caller owns anything it
        drained (each drained chunk is counted completed once the caller
        runs it — call :meth:`mark_done` per chunk, or account for them
        directly).
        """
        with self._lock:
            drained: list[Chunk] = []
            for queue in self._local:
                drained.extend(queue)
                queue.clear()
            drained.sort(key=lambda chunk: chunk.start)
            return drained

    def total_steals(self) -> int:
        """Chunks acquired by stealing, summed over lanes."""
        with self._lock:
            return sum(self.steals)

    def total_requeues(self) -> int:
        """Chunks returned unfinished by failed lanes, summed over lanes."""
        with self._lock:
            return sum(self.requeues)
