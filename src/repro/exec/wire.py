"""The wire protocol: length-prefixed pickle frames — **quarantined**.

This is the one module in the repo allowed to deserialize wire bytes
(lint rule ``EXC01`` enforces the quarantine): every trust-boundary
decision about the task-frame protocol lives here, in one auditable
place.

Frames are ``8-byte big-endian length || pickle``.  The payload is an
arbitrary pickled object — including callables the worker *executes* —
so the protocol is a compute-fabric protocol for trusted networks and
trusted clients, exactly like ``multiprocessing`` workers, and not a
public service.  The guards this module does provide are against
*corruption*, not malice:

* a frame length beyond :data:`MAX_FRAME_BYTES` is refused before any
  allocation happens (a corrupt prefix would otherwise ask for
  petabytes);
* truncated frames surface as :class:`ConnectionError`, never as a
  partial unpickle.

>>> import socket
>>> left, right = socket.socketpair()
>>> send_frame(left, ("ping",))
>>> recv_frame(right)
('ping',)
>>> left.close(); right.close()
"""

from __future__ import annotations

import pickle
import socket
import struct
from typing import Any

__all__ = ["MAX_FRAME_BYTES", "send_frame", "recv_frame"]

_LENGTH = struct.Struct(">Q")

#: Refuse frames beyond this size (a corrupt length prefix would
#: otherwise ask us to allocate petabytes).
MAX_FRAME_BYTES = 1 << 32


def send_frame(sock: socket.socket, obj: Any) -> None:
    """Pickle ``obj`` and write it as one length-prefixed frame."""
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_LENGTH.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, n_bytes: int) -> bytes:
    chunks = []
    remaining = n_bytes
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError("peer closed the connection mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Any:
    """Read one length-prefixed frame; raise ``ConnectionError`` on EOF."""
    header = sock.recv(_LENGTH.size)
    if not header:
        raise ConnectionError("peer closed the connection")
    if len(header) < _LENGTH.size:
        header += _recv_exact(sock, _LENGTH.size - len(header))
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ConnectionError(f"frame of {length} bytes exceeds protocol limit")
    return pickle.loads(_recv_exact(sock, length))
