"""The wire protocol: schema'd, versioned, authenticated frames — no pickle.

This module is the trust boundary of the distributed stack.  Until v2
the protocol was ``8-byte length || pickle`` — any peer that could reach
a worker socket owned the process, because ``pickle.loads`` constructs
arbitrary objects.  v2 replaces the payload with a **closed-vocabulary
schema codec** plus a **mandatory authenticated session**:

* **Schema codec.**  :func:`encode_value` / :func:`decode_value` handle
  a fixed, tagged vocabulary: ``None``/bools/ints/floats/strings/bytes,
  lists/tuples/dicts/sets, numpy arrays as ``dtype || shape || bytes``
  (object dtypes refused), numpy scalars, ``SeedSequence`` and
  ``Generator`` state, exceptions by registered name + arguments, and
  *registered* classes/functions only.  Decoding never imports a module,
  never calls ``__reduce__``, and only instantiates classes explicitly
  placed in the registry (:func:`register_wire_type` /
  :func:`register_wire_function`, plus the lazy sweep over the repo's
  own ``Protocol``/``InputDistribution``/… hierarchies) — a worker never
  deserializes code, it looks up callables it already has.
* **Authenticated session.**  :class:`WireSession` performs a
  challenge–response handshake at connect time (mutual HMAC-SHA256
  proofs over fresh nonces, derived from a per-worker shared secret)
  and then MACs **every frame** over a direction label, the session key
  (which binds both nonces) and a strict per-direction sequence number
  — so a tampered published-input matrix fails verification instead of
  being computed on, and a replayed frame's MAC cannot match the
  expected sequence number.  Transport privacy is optional TLS
  (``ssl.SSLContext``) underneath; authentication is not optional.

Every verification failure is a **typed** :class:`ConnectionError`
subclass, so the executor's existing requeue/health/telemetry paths
handle it like any other transport failure:

* oversized frames are refused *before sending* and before any receive
  allocation — :class:`FrameSizeError`;
* a connection closed mid-frame — :class:`TruncatedFrameError`;
* payload bytes that fail schema decoding — :class:`CorruptFrameError`
  (unregistered names and malformed structures raise the
  :class:`SchemaViolationError` refinement);
* a failed handshake — :class:`AuthenticationError`; a per-frame MAC
  mismatch (tampering or replay) — :class:`FrameAuthenticationError`.

The raw framing layer (:func:`send_frame` / :func:`recv_frame`) is
``8-byte big-endian length || schema payload`` and carries only the
handshake; everything after the handshake travels through
:meth:`WireSession.send` / :meth:`WireSession.recv`, which append the
32-byte frame MAC.  Large payload chunks (published matrices) are
written by reference — the frame is never materialized as one
``header + payload`` copy.

Key distribution is deliberately boring: both ends share a secret
(``DistributedExecutor(secret=...)``, worker ``--secret-file``), by
default read from the ``REPRO_WIRE_SECRET`` environment variable.  The
insecure well-known development secret is used only when neither side
configures anything — fine for loopback tests, loudly documented as
unfit for deployment (``docs/robustness.md``).

>>> import socket
>>> left, right = socket.socketpair()
>>> send_frame(left, ("ping",))
>>> recv_frame(right)
('ping',)
>>> left.close(); right.close()
"""

from __future__ import annotations

import builtins
import functools
import hashlib
import hmac
import importlib
import math
import os
import socket
import struct
import threading
from typing import Any, Callable, Iterable, Mapping

import numpy as np

__all__ = [
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "WIRE_CODECS",
    "DEFAULT_SECRET_ENV",
    "WireProtocolError",
    "FrameSizeError",
    "TruncatedFrameError",
    "CorruptFrameError",
    "SchemaViolationError",
    "AuthenticationError",
    "FrameAuthenticationError",
    "UnencodableError",
    "RemoteError",
    "register_wire_type",
    "register_wire_function",
    "encode_value",
    "decode_value",
    "function_digest",
    "encode_array_payload",
    "decode_array_payload",
    "resolve_secret",
    "send_frame",
    "recv_frame",
    "WireSession",
]

_LENGTH = struct.Struct(">Q")
_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")
_U32 = struct.Struct(">I")

#: Refuse frames beyond this size (a corrupt length prefix would
#: otherwise ask us to allocate petabytes).  Checked on *both* sides:
#: the sender raises before writing a byte, the receiver before
#: allocating.
MAX_FRAME_BYTES = 1 << 32

#: Version announced in the handshake challenge.  v1 was the pickle
#: protocol; v2 is the schema'd, authenticated protocol.  There is no
#: cross-version negotiation — both ends must speak the same version.
PROTOCOL_VERSION = 2

#: Array-payload codecs this end can decode, in preference order.
#: ``gf2pack`` bit-packs 0/1 ``uint8`` matrices (8x smaller on the
#: wire); ``raw`` is the C-order byte dump every peer must support.
WIRE_CODECS = ("gf2pack", "raw")

#: Environment variable both ends read the shared secret from when none
#: is configured explicitly.
DEFAULT_SECRET_ENV = "REPRO_WIRE_SECRET"

#: Well-known development secret, used only when neither side
#: configured one.  It authenticates nothing against an adversary — it
#: exists so loopback tests and single-user smoke runs work out of the
#: box while deployments set ``REPRO_WIRE_SECRET`` (or pass explicit
#: per-worker secrets) and get real authentication.
_DEV_SECRET = b"repro-dev-secret:configure-REPRO_WIRE_SECRET"

_MAC_BYTES = 32  # HMAC-SHA256
_NONCE_BYTES = 16
#: Handshake frames are tiny; bounding them separately keeps a
#: pre-authentication peer from asking us to buffer gigabytes.
_HANDSHAKE_MAX_BYTES = 1 << 16
_MAX_DEPTH = 64
#: Chunks at least this large are written to the socket by reference
#: instead of being coalesced into a copy.
_BIG_CHUNK_BYTES = 1 << 18


# ----------------------------------------------------------------------
# Typed errors
# ----------------------------------------------------------------------
class WireProtocolError(ConnectionError):
    """A frame violated the wire protocol (oversized, malformed)."""


class FrameSizeError(WireProtocolError):
    """A frame exceeded :data:`MAX_FRAME_BYTES` (refused on both sides)."""


class TruncatedFrameError(WireProtocolError):
    """The peer closed the connection in the middle of a frame."""


class CorruptFrameError(WireProtocolError):
    """A full-length frame arrived whose payload failed schema decoding."""


class SchemaViolationError(CorruptFrameError):
    """A well-formed frame carried disallowed content (an unregistered
    type or function name, a malformed structure, a bad digest)."""


class AuthenticationError(WireProtocolError):
    """The connect-time challenge–response handshake failed."""


class FrameAuthenticationError(AuthenticationError):
    """A frame's MAC did not verify — tampering or replay."""


class UnencodableError(TypeError):
    """A value cannot be expressed in the wire schema.

    Deliberately *not* a :class:`ConnectionError`: it fires on the
    sending side before any traffic, and executors respond by running
    the task locally (mirroring the old unpicklable fallback), not by
    requeueing chunks.
    """


class RemoteError(Exception):
    """A worker-side exception whose concrete type is not wire-registered.

    The original type name and message are preserved in the text; the
    traceback travels separately in the ``("err", exc, text)`` frame.
    """


# ----------------------------------------------------------------------
# Registries: the closed vocabulary of constructible types / callables
# ----------------------------------------------------------------------
_REGISTRY_LOCK = threading.RLock()
_TYPES: dict[str, type] = {}
_TYPE_NAMES: dict[type, str] = {}
_FUNCTIONS: dict[str, Callable[..., Any]] = {}
_FUNCTION_NAMES: dict[Any, str] = {}
_SWEPT = False

#: Builtin exceptions are decodable without registration — a worker
#: re-raising ``ValueError`` is the normal task-error path.
_BUILTIN_EXCEPTIONS: dict[str, type] = {
    name: value
    for name, value in vars(builtins).items()
    if isinstance(value, type) and issubclass(value, BaseException)
}

#: Modules swept for registrable classes the first time the codec runs.
#: Importing here (lazily, at first encode/decode) is how every
#: ``Protocol``/``InputDistribution``/``Scheduler``/``CoinSource``
#: subclass the repo ships becomes decodable without a manual register
#: call at each definition site.
_SWEEP_MODULES = (
    "repro.core.compile",
    "repro.core.engine",
    "repro.core.errors",
    "repro.core.network",
    "repro.core.processor",
    "repro.core.randomness",
    "repro.core.scheduler",
    "repro.core.simulator",
    "repro.core.transcript",
    "repro.linalg",
    "repro.distributions",
    "repro.protocols",
    "repro.cliques",
    "repro.distinguish",
    "repro.lowerbounds",
    "repro.infotheory",
    "repro.prg",
    "repro.analysis",
    "repro.costs",
)


def _wire_name(obj: Any) -> str:
    module = getattr(obj, "__module__", None)
    qualname = getattr(obj, "__qualname__", None)
    if not module or not qualname:
        raise UnencodableError(
            f"{obj!r} has no module/qualname to register under"
        )
    return f"{module}:{qualname}"


def register_wire_type(cls: type) -> type:
    """Register ``cls`` as decodable (usable as a class decorator).

    Instances travel as ``registered-name || state`` where state is the
    object's ``__getstate__()`` result expressed in the schema;
    decoding allocates with ``cls.__new__`` and applies the state via
    ``__setstate__`` (or the standard dict/slots application) — never
    ``__init__``, never ``__reduce__``.
    """
    name = _wire_name(cls)
    with _REGISTRY_LOCK:
        _TYPES[name] = cls
        _TYPE_NAMES[cls] = name
    return cls


def register_wire_function(fn: Callable[..., Any]) -> Callable[..., Any]:
    """Register a callable as referenceable by name over the wire.

    Only registered callables (and registered classes, which act as
    factories) can appear in a frame; a worker resolves the name against
    its own registry — code never travels.
    """
    name = _wire_name(fn)
    with _REGISTRY_LOCK:
        _FUNCTIONS[name] = fn
        try:
            _FUNCTION_NAMES[fn] = name
        except TypeError:  # repro-lint: disable=EXC03 an unhashable callable still decodes by name; only the reverse lookup is skipped
            pass
    return fn


def _register_tree(root: type) -> None:
    register_wire_type(root)
    for sub in type.__subclasses__(root):
        _register_tree(sub)


def _ensure_registry(resweep: bool = False) -> None:
    """Populate the registry from the repo's own class hierarchies.

    ``resweep=True`` re-walks the subclass trees — how a test-local
    ``Protocol`` subclass defined after the first sweep still resolves
    (both ends of an in-process loopback share this registry).
    """
    global _SWEPT
    with _REGISTRY_LOCK:
        if _SWEPT and not resweep:
            return
        first = not _SWEPT
        _SWEPT = True
        if first:
            for module_name in _SWEEP_MODULES:
                try:
                    importlib.import_module(module_name)
                except ImportError:  # pragma: no cover - optional subpackage
                    continue
        from ..core.engine import (
            RunSpec,
            TrialResult,
            _SharedInput,
            _TrialRunner,
        )
        from ..core.errors import BroadcastCliqueError
        from ..core.network import CostReport
        from ..core.processor import ProcessorContext
        from ..core.protocol import Protocol
        from ..core.randomness import CoinSource
        from ..core.scheduler import Scheduler
        from ..core.simulator import ExecutionResult
        from ..core.transcript import BroadcastEvent, Transcript
        from ..distributions.base import InputDistribution
        from ..linalg.bitvec import BitVector

        for root in (
            Protocol,
            Scheduler,
            CoinSource,
            InputDistribution,
            BroadcastCliqueError,
        ):
            _register_tree(root)
        for cls in (
            RunSpec,
            TrialResult,
            _TrialRunner,
            _SharedInput,
            CostReport,
            ProcessorContext,
            ExecutionResult,
            BroadcastEvent,
            Transcript,
            BitVector,
            RemoteError,
        ):
            register_wire_type(cls)
        try:
            from ..analysis.sweep import _MeasureCall

            register_wire_type(_MeasureCall)
        except ImportError:  # repro-lint: disable=EXC03 optional subpackage; its frames would fail loudly as unregistered  # pragma: no cover
            pass
        try:
            from ..prg.newman import NewmanCompiled, _CompiledTrialRunner

            register_wire_type(NewmanCompiled)
            register_wire_type(_CompiledTrialRunner)
        except ImportError:  # repro-lint: disable=EXC03 optional subpackage; its frames would fail loudly as unregistered  # pragma: no cover
            pass
        from .worker import PublishedInput

        register_wire_type(PublishedInput)


# ----------------------------------------------------------------------
# Value codec
# ----------------------------------------------------------------------
class _Encoder:
    """Accumulates encoded bytes; big payloads ride as separate chunks.

    The chunk list is what lets the framing layer write a multi-GiB
    published matrix to the socket by reference instead of joining
    ``header + payload`` into one doubled-peak-memory copy.
    """

    __slots__ = ("chunks", "buf")

    def __init__(self) -> None:
        self.chunks: list[bytes] = []
        self.buf = bytearray()

    def write(self, data: bytes) -> None:
        self.buf += data

    def write_big(self, data: bytes) -> None:
        if len(data) >= _BIG_CHUNK_BYTES:
            if self.buf:
                self.chunks.append(bytes(self.buf))
                self.buf = bytearray()
            self.chunks.append(data)
        else:
            self.buf += data

    def done(self) -> list[bytes]:
        if self.buf:
            self.chunks.append(bytes(self.buf))
            self.buf = bytearray()
        return self.chunks


def _encode_str(enc: _Encoder, tag: bytes, text: str) -> None:
    data = text.encode("utf-8", "surrogatepass")
    enc.write(tag + _LENGTH.pack(len(data)) + data)


def _lookup_function_name(obj: Any) -> str | None:
    try:
        return _FUNCTION_NAMES.get(obj)
    except TypeError:  # unhashable callable
        return None


def _encode(obj: Any, enc: _Encoder, depth: int) -> None:
    if depth > _MAX_DEPTH:
        raise UnencodableError("value nests deeper than the wire schema allows")
    if obj is None:
        enc.write(b"N")
        return
    kind = type(obj)
    if kind is bool:
        enc.write(b"T" if obj else b"F")
        return
    if kind is int:
        if -(1 << 63) <= obj < (1 << 63):
            enc.write(b"i" + _I64.pack(obj))
        else:
            magnitude = abs(obj)
            data = magnitude.to_bytes((magnitude.bit_length() + 7) // 8, "big")
            sign = b"\x01" if obj < 0 else b"\x00"
            enc.write(b"I" + sign + _U32.pack(len(data)) + data)
        return
    if kind is float:
        enc.write(b"d" + _F64.pack(obj))
        return
    if kind is str:
        _encode_str(enc, b"s", obj)
        return
    if kind in (bytes, bytearray, memoryview):
        data = bytes(obj) if kind is not bytes else obj
        enc.write(b"b" + _LENGTH.pack(len(data)))
        enc.write_big(data)
        return
    if kind is list or kind is tuple:
        enc.write((b"l" if kind is list else b"t") + _LENGTH.pack(len(obj)))
        for item in obj:
            _encode(item, enc, depth + 1)
        return
    if kind is dict:
        enc.write(b"D" + _LENGTH.pack(len(obj)))
        for key, value in obj.items():
            _encode(key, enc, depth + 1)
            _encode(value, enc, depth + 1)
        return
    if kind is set or kind is frozenset:
        enc.write((b"h" if kind is set else b"H") + _LENGTH.pack(len(obj)))
        for item in obj:
            _encode(item, enc, depth + 1)
        return
    if isinstance(obj, np.ndarray):
        if obj.dtype.hasobject:
            raise UnencodableError("object-dtype arrays cannot travel the wire")
        array = np.ascontiguousarray(obj)
        dtype_str = np.dtype(array.dtype).str
        _encode_str(enc, b"A", dtype_str)
        enc.write(bytes([array.ndim]))
        for extent in array.shape:
            enc.write(_LENGTH.pack(extent))
        data = array.tobytes()
        enc.write(_LENGTH.pack(len(data)))
        enc.write_big(data)
        return
    if isinstance(obj, np.generic):
        if obj.dtype.hasobject:
            raise UnencodableError("object-dtype scalars cannot travel the wire")
        data = obj.tobytes()
        _encode_str(enc, b"x", np.dtype(obj.dtype).str)
        enc.write(_LENGTH.pack(len(data)) + data)
        return
    if isinstance(obj, np.random.SeedSequence):
        entropy = obj.entropy
        if isinstance(entropy, np.ndarray):  # pragma: no cover - rare form
            entropy = [int(word) for word in entropy]
        state = (
            entropy,
            tuple(int(key) for key in obj.spawn_key),
            int(obj.pool_size),
            int(obj.n_children_spawned),
        )
        enc.write(b"S")
        _encode(state, enc, depth + 1)
        return
    if isinstance(obj, np.random.Generator):
        enc.write(b"G")
        _encode(obj.bit_generator.state, enc, depth + 1)
        return
    if isinstance(obj, functools.partial):
        enc.write(b"P")
        _encode(obj.func, enc, depth + 1)
        _encode(tuple(obj.args), enc, depth + 1)
        _encode(dict(obj.keywords), enc, depth + 1)
        return
    if isinstance(obj, BaseException):
        name = _exception_name(kind)
        try:
            args_chunks = _encode_chunks(tuple(obj.args), depth + 1)
        except UnencodableError:
            args_chunks = _encode_chunks((_safe_repr(obj),), depth + 1)
        _encode_str(enc, b"E", name)
        for chunk in args_chunks:
            enc.write_big(chunk)
        return
    if isinstance(obj, type):
        name = _TYPE_NAMES.get(obj)
        if name is None:
            _ensure_registry(resweep=True)
            name = _TYPE_NAMES.get(obj)
        if name is None:
            raise UnencodableError(
                f"class {obj.__module__}.{obj.__qualname__} is not "
                "wire-registered (register_wire_type)"
            )
        _encode_str(enc, b"C", name)
        return
    if callable(obj):
        name = _lookup_function_name(obj)
        if name is None:
            _ensure_registry(resweep=True)
            name = _lookup_function_name(obj)
        if name is not None:
            _encode_str(enc, b"f", name)
            return
        # A callable *instance* of a registered class (a trial runner)
        # falls through to the object path below.
    name = _TYPE_NAMES.get(kind)
    if name is None:
        _ensure_registry(resweep=True)
        name = _TYPE_NAMES.get(kind)
    if name is None:
        raise UnencodableError(
            f"{kind.__module__}.{kind.__qualname__} is not wire-encodable "
            "(register_wire_type / register_wire_function)"
        )
    state = obj.__getstate__()
    _encode_str(enc, b"O", name)
    _encode(state, enc, depth + 1)


def _safe_repr(obj: BaseException) -> str:
    try:
        return f"{type(obj).__name__}: {obj}"
    except Exception:  # pragma: no cover - degenerate __str__
        return type(obj).__name__


def _exception_name(cls: type) -> str:
    if cls.__module__ == "builtins":
        return f"builtins:{cls.__qualname__}"
    return _wire_name(cls)


def _encode_chunks(obj: Any, depth: int = 0) -> list[bytes]:
    enc = _Encoder()
    _encode(obj, enc, depth)
    return enc.done()


def encode_value(obj: Any) -> bytes:
    """``obj`` in the wire schema, as one byte string.

    Raises :class:`UnencodableError` when the value steps outside the
    schema (an unregistered class, a lambda, an object-dtype array).
    """
    _ensure_registry()
    return b"".join(_encode_chunks(obj))


def function_digest(fn_bytes: bytes) -> str:
    """Content digest a ``register_fn`` frame keys its callable under."""
    return hashlib.sha256(fn_bytes).hexdigest()


class _Decoder:
    __slots__ = ("view", "pos")

    def __init__(self, payload: bytes) -> None:
        self.view = memoryview(payload)
        self.pos = 0

    @property
    def remaining(self) -> int:
        return len(self.view) - self.pos

    def take(self, count: int) -> memoryview:
        if count < 0 or count > self.remaining:
            raise CorruptFrameError(
                f"frame payload underflow ({count} bytes wanted, "
                f"{self.remaining} left)"
            )
        chunk = self.view[self.pos : self.pos + count]
        self.pos += count
        return chunk

    def u64(self) -> int:
        return int(_LENGTH.unpack(self.take(_LENGTH.size))[0])

    def count(self) -> int:
        value = self.u64()
        if value > self.remaining:
            # Every element costs at least one tag byte: a count beyond
            # the remaining payload is a lie, refuse before looping.
            raise CorruptFrameError(
                f"container of {value} elements exceeds the frame payload"
            )
        return value

    def text(self) -> str:
        length = self.u64()
        if length > self.remaining:
            raise CorruptFrameError("string length exceeds the frame payload")
        return bytes(self.take(length)).decode("utf-8", "surrogatepass")

    def value(self, depth: int) -> Any:
        if depth > _MAX_DEPTH:
            raise CorruptFrameError("frame nests deeper than the wire schema")
        tag = bytes(self.take(1))
        if tag == b"N":
            return None
        if tag == b"T":
            return True
        if tag == b"F":
            return False
        if tag == b"i":
            return int(_I64.unpack(self.take(_I64.size))[0])
        if tag == b"I":
            sign = bytes(self.take(1))
            length = int(_U32.unpack(self.take(_U32.size))[0])
            magnitude = int.from_bytes(self.take(length), "big")
            return -magnitude if sign == b"\x01" else magnitude
        if tag == b"d":
            return float(_F64.unpack(self.take(_F64.size))[0])
        if tag == b"s":
            return self.text()
        if tag == b"b":
            length = self.u64()
            return bytes(self.take(length))
        if tag in (b"l", b"t"):
            size = self.count()
            items = [self.value(depth + 1) for _ in range(size)]
            return items if tag == b"l" else tuple(items)
        if tag == b"D":
            size = self.count()
            return {
                self.value(depth + 1): self.value(depth + 1)
                for _ in range(size)
            }
        if tag in (b"h", b"H"):
            size = self.count()
            items = [self.value(depth + 1) for _ in range(size)]
            return set(items) if tag == b"h" else frozenset(items)
        if tag == b"A":
            return self._array(depth)
        if tag == b"x":
            dtype = self._dtype(self.text())
            length = self.u64()
            data = bytes(self.take(length))
            if dtype.itemsize != len(data):
                raise CorruptFrameError("scalar payload does not match dtype")
            return np.frombuffer(data, dtype=dtype)[0]
        if tag == b"S":
            return self._seed_sequence(depth)
        if tag == b"G":
            return self._generator(depth)
        if tag == b"P":
            func = self.value(depth + 1)
            args = self.value(depth + 1)
            keywords = self.value(depth + 1)
            if not callable(func) or not isinstance(args, tuple) or not isinstance(keywords, dict):
                raise SchemaViolationError("malformed partial on the wire")
            return functools.partial(func, *args, **keywords)
        if tag == b"E":
            return self._exception(depth)
        if tag == b"C":
            return self._class_ref(self.text())
        if tag == b"f":
            return self._function_ref(self.text())
        if tag == b"O":
            return self._object(depth)
        raise CorruptFrameError(f"unknown wire tag {tag!r}")

    # -- composite decoders ---------------------------------------------
    def _dtype(self, dtype_str: str) -> np.dtype:
        try:
            dtype = np.dtype(dtype_str)
        except Exception as exc:
            raise CorruptFrameError(f"bad dtype {dtype_str!r} on the wire") from exc
        if dtype.hasobject:
            raise SchemaViolationError("object dtypes are not wire-decodable")
        return dtype

    def _array(self, depth: int) -> np.ndarray:
        dtype = self._dtype(self.text())
        ndim = bytes(self.take(1))[0]
        if ndim > 32:
            raise CorruptFrameError(f"array of {ndim} dimensions refused")
        shape = tuple(self.u64() for _ in range(ndim))
        nbytes = self.u64()
        expected = int(math.prod(shape)) * dtype.itemsize
        if expected != nbytes:
            raise CorruptFrameError(
                f"array payload of {nbytes} bytes does not match "
                f"shape {shape} / dtype {dtype.str}"
            )
        data = self.take(nbytes)
        # A fresh writable copy: the frame buffer must not pin multi-GiB
        # views alive, and decoded state (e.g. recorded inputs) may be
        # mutated downstream.  The bulk publish path has its own
        # zero-copy lane (decode_array_payload).
        return np.frombuffer(bytes(data), dtype=dtype).reshape(shape).copy()

    def _seed_sequence(self, depth: int) -> np.random.SeedSequence:
        state = self.value(depth + 1)
        if not (isinstance(state, tuple) and len(state) == 4):
            raise SchemaViolationError("malformed SeedSequence on the wire")
        entropy, spawn_key, pool_size, n_children = state
        try:
            seq = np.random.SeedSequence(
                entropy=entropy,
                spawn_key=tuple(spawn_key),
                pool_size=int(pool_size),
                n_children_spawned=int(n_children),
            )
        except Exception as exc:
            raise SchemaViolationError(
                f"SeedSequence state rejected ({exc})"
            ) from exc
        return seq

    def _generator(self, depth: int) -> np.random.Generator:
        state = self.value(depth + 1)
        if not isinstance(state, dict) or "bit_generator" not in state:
            raise SchemaViolationError("malformed Generator state on the wire")
        name = state["bit_generator"]
        bit_cls = getattr(np.random, str(name), None)
        if not (
            isinstance(bit_cls, type)
            and issubclass(bit_cls, np.random.BitGenerator)
        ):
            raise SchemaViolationError(
                f"unknown bit generator {name!r} on the wire"
            )
        try:
            bit_gen = bit_cls()
            bit_gen.state = state
        except Exception as exc:
            raise SchemaViolationError(
                f"Generator state rejected ({exc})"
            ) from exc
        return np.random.Generator(bit_gen)

    def _exception(self, depth: int) -> BaseException:
        name = self.text()
        args = self.value(depth + 1)
        if not isinstance(args, tuple):
            raise SchemaViolationError("malformed exception args on the wire")
        cls: type | None = None
        module, _, qualname = name.partition(":")
        if module == "builtins":
            candidate = _BUILTIN_EXCEPTIONS.get(qualname)
            if candidate is not None:
                cls = candidate
        else:
            candidate = _TYPES.get(name)
            if candidate is None:
                _ensure_registry(resweep=True)
                candidate = _TYPES.get(name)
            if isinstance(candidate, type) and issubclass(candidate, BaseException):
                cls = candidate
        if cls is None:
            return RemoteError(
                f"[unregistered worker exception {name}] "
                + ", ".join(str(arg) for arg in args)
            )
        try:
            return cls(*args)
        except Exception:
            return RemoteError(
                f"[{name} not reconstructible from args] "
                + ", ".join(str(arg) for arg in args)
            )

    def _class_ref(self, name: str) -> type:
        cls = _TYPES.get(name)
        if cls is None:
            _ensure_registry(resweep=True)
            cls = _TYPES.get(name)
        if cls is None:
            raise SchemaViolationError(
                f"frame references unregistered class {name!r}"
            )
        return cls

    def _function_ref(self, name: str) -> Callable[..., Any]:
        fn = _FUNCTIONS.get(name)
        if fn is None:
            _ensure_registry(resweep=True)
            fn = _FUNCTIONS.get(name)
        if fn is None:
            raise SchemaViolationError(
                f"frame references unregistered function {name!r}"
            )
        return fn

    def _object(self, depth: int) -> Any:
        cls = self._class_ref(self.text())
        state = self.value(depth + 1)
        try:
            obj = cls.__new__(cls)
        except Exception as exc:  # pragma: no cover - exotic metaclass
            raise SchemaViolationError(
                f"cannot allocate {cls.__qualname__} ({exc})"
            ) from exc
        setstate = getattr(obj, "__setstate__", None)
        if setstate is not None:
            setstate(state)
            return obj
        dict_state: Any = state
        slots_state: Any = None
        if isinstance(state, tuple) and len(state) == 2:
            dict_state, slots_state = state
        if dict_state is not None:
            if not isinstance(dict_state, dict):
                raise SchemaViolationError(
                    f"malformed state for {cls.__qualname__} on the wire"
                )
            for key, value in dict_state.items():
                obj.__dict__[key] = value
        if slots_state is not None:
            if not isinstance(slots_state, dict):
                raise SchemaViolationError(
                    f"malformed slots state for {cls.__qualname__} on the wire"
                )
            for key, value in slots_state.items():
                object.__setattr__(obj, key, value)  # repro-lint: disable=DET02 applying decoded slot state is the codec's one sanctioned use
        return obj


def decode_value(payload: bytes) -> Any:
    """Decode one schema payload; typed errors on anything malformed."""
    _ensure_registry()
    dec = _Decoder(payload)
    try:
        value = dec.value(0)
    except CorruptFrameError:
        raise
    except RecursionError as exc:
        raise CorruptFrameError("frame nests deeper than the decoder") from exc
    except Exception as exc:  # noqa: BLE001 - any decode failure is corruption
        raise CorruptFrameError(
            f"frame payload of {len(payload)} bytes failed to decode "
            f"({type(exc).__name__}: {exc})"
        ) from exc
    if dec.pos != len(dec.view):
        raise CorruptFrameError(
            f"{len(dec.view) - dec.pos} trailing bytes after the frame payload"
        )
    return value


# ----------------------------------------------------------------------
# Array-payload codecs (published-input compression)
# ----------------------------------------------------------------------
def encode_array_payload(
    array: np.ndarray, codecs: Iterable[str] = WIRE_CODECS
) -> tuple[str, bytes]:
    """Encode a published matrix under the best negotiated codec.

    ``gf2pack`` bit-packs GF(2) matrices — ``uint8`` arrays whose values
    are all 0/1, the repo's dominant payload — to one-eighth of the raw
    size; anything else ships ``raw`` C-order bytes.
    """
    contiguous = np.ascontiguousarray(array)
    if (
        "gf2pack" in codecs
        and contiguous.dtype == np.uint8
        and contiguous.size > 0
        and int(contiguous.max()) <= 1
    ):
        return "gf2pack", np.packbits(contiguous.reshape(-1)).tobytes()
    return "raw", contiguous.tobytes()


def decode_array_payload(
    codec: str, data: bytes, shape: tuple[int, ...], dtype_str: str
) -> np.ndarray:
    """Decode a published matrix; read-only, zero-copy where possible."""
    try:
        dtype = np.dtype(dtype_str)
    except Exception as exc:
        raise CorruptFrameError(f"bad dtype {dtype_str!r} on the wire") from exc
    if dtype.hasobject:
        raise SchemaViolationError("object dtypes are not wire-decodable")
    count = int(math.prod(shape))
    if codec == "raw":
        if count * dtype.itemsize != len(data):
            raise CorruptFrameError(
                f"published payload of {len(data)} bytes does not match "
                f"shape {shape} / dtype {dtype.str}"
            )
        return np.frombuffer(data, dtype=dtype).reshape(shape)
    if codec == "gf2pack":
        if dtype != np.uint8:
            raise SchemaViolationError(
                f"gf2pack payload must be uint8, not {dtype.str}"
            )
        if len(data) != (count + 7) // 8:
            raise CorruptFrameError(
                f"gf2pack payload of {len(data)} bytes does not match "
                f"{count} elements"
            )
        array = np.unpackbits(
            np.frombuffer(data, dtype=np.uint8), count=count
        ).reshape(shape)
        array.flags.writeable = False
        return array
    raise SchemaViolationError(f"unknown wire codec {codec!r}")


# ----------------------------------------------------------------------
# Raw framing (handshake transport; MAC-less)
# ----------------------------------------------------------------------
def _send_chunks(sock: socket.socket, chunks: Iterable[bytes]) -> None:
    """Write chunks without joining big ones into a doubled-memory copy."""
    pending: list[bytes] = []
    pending_len = 0
    for chunk in chunks:
        if len(chunk) >= _BIG_CHUNK_BYTES:
            if pending:
                sock.sendall(b"".join(pending))
                pending = []
                pending_len = 0
            sock.sendall(chunk)
        else:
            pending.append(chunk)
            pending_len += len(chunk)
            if pending_len >= _BIG_CHUNK_BYTES:
                sock.sendall(b"".join(pending))
                pending = []
                pending_len = 0
    if pending:
        sock.sendall(b"".join(pending))


def _frame_length(chunks: list[bytes]) -> int:
    length = sum(len(chunk) for chunk in chunks)
    if length > MAX_FRAME_BYTES:
        # The sender-side size guard: refuse before a single byte is
        # written, instead of poisoning the stream and letting the
        # receiver kill the connection.
        raise FrameSizeError(
            f"frame of {length} bytes exceeds protocol limit "
            f"({MAX_FRAME_BYTES})"
        )
    return length


def send_frame(sock: socket.socket, obj: Any) -> None:
    """Write ``obj`` as one length-prefixed schema frame (no MAC).

    Carries only the pre-session handshake (and tests); authenticated
    traffic goes through :meth:`WireSession.send`.
    """
    _ensure_registry()
    chunks = _encode_chunks(obj)
    length = _frame_length(chunks)
    _send_chunks(sock, [_LENGTH.pack(length), *chunks])


def _recv_exact(sock: socket.socket, n_bytes: int) -> bytes:
    chunks = []
    remaining = n_bytes
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise TruncatedFrameError("peer closed the connection mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _recv_header(sock: socket.socket, max_bytes: int) -> int:
    header = sock.recv(_LENGTH.size)
    if not header:
        raise ConnectionError("peer closed the connection")
    if len(header) < _LENGTH.size:
        header += _recv_exact(sock, _LENGTH.size - len(header))
    (length,) = _LENGTH.unpack(header)
    if length > max_bytes:
        raise FrameSizeError(
            f"frame of {length} bytes exceeds protocol limit ({max_bytes})"
        )
    return length


def recv_frame(sock: socket.socket, max_bytes: int | None = None) -> Any:
    """Read one length-prefixed schema frame (no MAC).

    Raises plain :class:`ConnectionError` on a clean EOF between frames
    (the peer hung up — the normal end of a session) and the typed
    subclasses above for everything pathological.
    """
    length = _recv_header(sock, MAX_FRAME_BYTES if max_bytes is None else max_bytes)
    return decode_value(_recv_exact(sock, length))


# ----------------------------------------------------------------------
# Authenticated session
# ----------------------------------------------------------------------
def resolve_secret(secret: "bytes | str | None") -> bytes:
    """The shared secret as bytes: explicit, else env, else dev default."""
    if secret is None:
        env = os.environ.get(DEFAULT_SECRET_ENV)
        if env:
            return env.encode("utf-8")
        return _DEV_SECRET
    if isinstance(secret, str):
        return secret.encode("utf-8")
    return bytes(secret)


def _proof(secret: bytes, label: bytes, *nonces: bytes) -> bytes:
    mac = hmac.new(secret, digestmod=hashlib.sha256)
    mac.update(label)
    for nonce in nonces:
        mac.update(nonce)
    return mac.digest()


def _check_nonce(value: Any, what: str) -> bytes:
    if not isinstance(value, bytes) or len(value) != _NONCE_BYTES:
        raise AuthenticationError(f"malformed {what} in handshake")
    return value


def _check_codecs(value: Any) -> tuple[str, ...]:
    if not isinstance(value, tuple) or not all(
        isinstance(codec, str) for codec in value
    ):
        raise AuthenticationError("malformed codec list in handshake")
    return value


class WireSession:
    """An authenticated, sequenced, codec-negotiated frame channel.

    Construct with :meth:`client` / :meth:`server`, which run the
    challenge–response handshake over raw frames:

    1. server → ``("challenge", version, server_nonce, codecs)``
    2. client → ``("auth", client_nonce, client_proof, codecs)`` where
       ``client_proof = HMAC(secret, "client" || nonces)``
    3. server verifies, replies ``("welcome", server_proof)`` with the
       mirrored server proof — authentication is mutual — or
       ``("auth_denied",)`` and closes.

    The session key is ``HMAC(secret, "session" || nonces)``; every
    subsequent frame is ``length || payload || MAC`` with the MAC taken
    over a direction label, the strict per-direction sequence number,
    the length, and the payload.  Fresh nonces mean a frame recorded
    from one session can never verify in another; the sequence number
    means it cannot be replayed (or reordered) within its own session.
    """

    __slots__ = ("sock", "codecs", "_key", "_send_label", "_recv_label",
                 "_send_seq", "_recv_seq")

    def __init__(
        self,
        sock: socket.socket,
        key: bytes,
        send_label: bytes,
        recv_label: bytes,
        codecs: tuple[str, ...],
    ) -> None:
        self.sock = sock
        self.codecs = codecs
        self._key = key
        self._send_label = send_label
        self._recv_label = recv_label
        self._send_seq = 0
        self._recv_seq = 0

    # -- handshake ------------------------------------------------------
    @classmethod
    def client(
        cls,
        sock: socket.socket,
        secret: "bytes | str | None" = None,
        codecs: Iterable[str] = WIRE_CODECS,
    ) -> "WireSession":
        """Authenticate the client side of a fresh connection."""
        key = resolve_secret(secret)
        offered = tuple(codecs)
        challenge = recv_frame(sock, max_bytes=_HANDSHAKE_MAX_BYTES)
        if not (
            isinstance(challenge, tuple)
            and len(challenge) == 4
            and challenge[0] == "challenge"
        ):
            raise AuthenticationError(
                f"expected a handshake challenge, got {_frame_kind(challenge)!r}"
            )
        _, version, server_nonce, server_codecs = challenge
        if version != PROTOCOL_VERSION:
            raise WireProtocolError(
                f"worker speaks wire protocol v{version}, this client "
                f"speaks v{PROTOCOL_VERSION}"
            )
        server_nonce = _check_nonce(server_nonce, "server nonce")
        server_codecs = _check_codecs(server_codecs)
        client_nonce = os.urandom(_NONCE_BYTES)
        send_frame(
            sock,
            (
                "auth",
                client_nonce,
                _proof(key, b"client", server_nonce, client_nonce),
                offered,
            ),
        )
        reply = recv_frame(sock, max_bytes=_HANDSHAKE_MAX_BYTES)
        if isinstance(reply, tuple) and reply[:1] == ("auth_denied",):
            raise AuthenticationError(
                "worker rejected this client's credentials (secret mismatch?)"
            )
        if not (
            isinstance(reply, tuple) and len(reply) == 2 and reply[0] == "welcome"
        ):
            raise AuthenticationError(
                f"expected a handshake welcome, got {_frame_kind(reply)!r}"
            )
        expected = _proof(key, b"server", client_nonce, server_nonce)
        if not isinstance(reply[1], bytes) or not hmac.compare_digest(
            reply[1], expected
        ):
            raise AuthenticationError(
                "worker failed mutual authentication (secret mismatch?)"
            )
        negotiated = tuple(c for c in server_codecs if c in offered) or ("raw",)
        return cls(
            sock,
            _proof(key, b"session", server_nonce, client_nonce),
            send_label=b"C",
            recv_label=b"S",
            codecs=negotiated,
        )

    @classmethod
    def server(
        cls,
        sock: socket.socket,
        secret: "bytes | str | None" = None,
        codecs: Iterable[str] = WIRE_CODECS,
    ) -> "WireSession":
        """Authenticate the server side of a freshly accepted connection."""
        key = resolve_secret(secret)
        offered = tuple(codecs)
        server_nonce = os.urandom(_NONCE_BYTES)
        send_frame(sock, ("challenge", PROTOCOL_VERSION, server_nonce, offered))
        reply = recv_frame(sock, max_bytes=_HANDSHAKE_MAX_BYTES)
        if not (
            isinstance(reply, tuple) and len(reply) == 4 and reply[0] == "auth"
        ):
            raise AuthenticationError(
                f"expected a handshake auth frame, got {_frame_kind(reply)!r}"
            )
        _, client_nonce, client_proof, client_codecs = reply
        client_nonce = _check_nonce(client_nonce, "client nonce")
        client_codecs = _check_codecs(client_codecs)
        expected = _proof(key, b"client", server_nonce, client_nonce)
        if not isinstance(client_proof, bytes) or not hmac.compare_digest(
            client_proof, expected
        ):
            try:
                send_frame(sock, ("auth_denied",))
            except OSError:  # repro-lint: disable=EXC03 peer may be gone; the denial below is the signal
                pass
            raise AuthenticationError(
                "client failed authentication (secret mismatch?)"
            )
        send_frame(
            sock, ("welcome", _proof(key, b"server", client_nonce, server_nonce))
        )
        negotiated = tuple(c for c in offered if c in client_codecs) or ("raw",)
        return cls(
            sock,
            _proof(key, b"session", server_nonce, client_nonce),
            send_label=b"S",
            recv_label=b"C",
            codecs=negotiated,
        )

    # -- authenticated frames -------------------------------------------
    def _mac(self, label: bytes, seq: int, length: int, chunks: Iterable[bytes]) -> bytes:
        mac = hmac.new(self._key, digestmod=hashlib.sha256)
        mac.update(label)
        mac.update(_LENGTH.pack(seq))
        mac.update(_LENGTH.pack(length))
        for chunk in chunks:
            mac.update(chunk)
        return mac.digest()

    def frame_bytes(self, obj: Any) -> tuple[bytes, list[bytes], bytes]:
        """``(header, payload_chunks, mac)`` for ``obj``, advancing the
        send sequence — the hook fault injection uses to damage a frame
        *after* the MAC is computed, so chaos cells exercise detection."""
        _ensure_registry()
        chunks = _encode_chunks(obj)
        length = _frame_length(chunks)
        seq = self._send_seq
        self._send_seq += 1
        mac = self._mac(self._send_label, seq, length, chunks)
        return _LENGTH.pack(length), chunks, mac

    def send(self, obj: Any) -> None:
        """Encode, MAC, and write ``obj`` as one authenticated frame."""
        header, chunks, mac = self.frame_bytes(obj)
        _send_chunks(self.sock, [header, *chunks, mac])

    def recv(self) -> Any:
        """Read and verify one authenticated frame.

        MAC verification happens **before** schema decoding: tampered
        bytes surface as :class:`FrameAuthenticationError`, never as a
        decoder crash on attacker-shaped input.
        """
        length = _recv_header(self.sock, MAX_FRAME_BYTES)
        payload = _recv_exact(self.sock, length)
        mac = _recv_exact(self.sock, _MAC_BYTES)
        expected = self._mac(self._recv_label, self._recv_seq, length, [payload])
        if not hmac.compare_digest(mac, expected):
            raise FrameAuthenticationError(
                f"frame {self._recv_seq} failed MAC verification "
                "(tampered, truncated-and-refilled, or replayed)"
            )
        self._recv_seq += 1
        return decode_value(payload)

    def request(self, obj: Any) -> Any:
        """One authenticated round-trip."""
        self.send(obj)
        return self.recv()


def _frame_kind(frame: Any) -> Any:
    if isinstance(frame, tuple) and frame:
        return frame[0]
    return type(frame).__name__
