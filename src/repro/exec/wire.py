"""The wire protocol: length-prefixed pickle frames — **quarantined**.

This is the one module in the repo allowed to deserialize wire bytes
(lint rule ``EXC01`` enforces the quarantine): every trust-boundary
decision about the task-frame protocol lives here, in one auditable
place.

Frames are ``8-byte big-endian length || pickle``.  The payload is an
arbitrary pickled object — including callables the worker *executes* —
so the protocol is a compute-fabric protocol for trusted networks and
trusted clients, exactly like ``multiprocessing`` workers, and not a
public service.  The guards this module does provide are against
*corruption*, not malice, and every failure is a **typed** error (the
fault-injection suite asserts a damaged frame can never surface as a
silent partial decode):

* a frame length beyond :data:`MAX_FRAME_BYTES` is refused before any
  allocation happens (a corrupt prefix would otherwise ask for
  petabytes) — :class:`WireProtocolError`;
* a connection closed mid-frame surfaces as
  :class:`TruncatedFrameError`, never as a partial unpickle;
* payload bytes that fail to decode surface as
  :class:`CorruptFrameError` — a torn, bit-flipped, or mis-framed
  payload is a transport failure, and callers treat it exactly like a
  dropped socket (the chunk is requeued elsewhere).

All three are :class:`ConnectionError` subclasses, so every existing
``except ConnectionError`` transport path handles them — the subclass
only adds the diagnosis.

>>> import socket
>>> left, right = socket.socketpair()
>>> send_frame(left, ("ping",))
>>> recv_frame(right)
('ping',)
>>> left.close(); right.close()
"""

from __future__ import annotations

import pickle
import socket
import struct
from typing import Any

__all__ = [
    "MAX_FRAME_BYTES",
    "WireProtocolError",
    "TruncatedFrameError",
    "CorruptFrameError",
    "send_frame",
    "recv_frame",
]

_LENGTH = struct.Struct(">Q")

#: Refuse frames beyond this size (a corrupt length prefix would
#: otherwise ask us to allocate petabytes).
MAX_FRAME_BYTES = 1 << 32


class WireProtocolError(ConnectionError):
    """A frame violated the wire protocol (oversized, malformed)."""


class TruncatedFrameError(WireProtocolError):
    """The peer closed the connection in the middle of a frame."""


class CorruptFrameError(WireProtocolError):
    """A full-length frame arrived whose payload failed to decode."""


def send_frame(sock: socket.socket, obj: Any) -> None:
    """Pickle ``obj`` and write it as one length-prefixed frame."""
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_LENGTH.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, n_bytes: int) -> bytes:
    chunks = []
    remaining = n_bytes
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise TruncatedFrameError("peer closed the connection mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Any:
    """Read one length-prefixed frame.

    Raises plain :class:`ConnectionError` on a clean EOF between frames
    (the peer hung up — the normal end of a session) and the typed
    subclasses above for everything pathological.
    """
    header = sock.recv(_LENGTH.size)
    if not header:
        raise ConnectionError("peer closed the connection")
    if len(header) < _LENGTH.size:
        header += _recv_exact(sock, _LENGTH.size - len(header))
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise WireProtocolError(
            f"frame of {length} bytes exceeds protocol limit"
        )
    payload = _recv_exact(sock, length)
    try:
        return pickle.loads(payload)
    except Exception as exc:  # noqa: BLE001 - any decode failure is corruption
        raise CorruptFrameError(
            f"frame payload of {length} bytes failed to decode "
            f"({type(exc).__name__}: {exc})"
        ) from exc
