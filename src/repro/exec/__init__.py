"""repro.exec — asynchronous job scheduling over the execution engine.

PR 1's engine made the N-trial batch a first-class object; this package
makes *many in-flight batches* first-class.  Five layers, each speaking
the same :class:`~repro.core.engine.Executor` contract so they compose
with every estimator, sweep, and benchmark that already takes
``executor=``:

* :mod:`repro.exec.futures` — :class:`BatchFuture` /
  :func:`as_completed` over ``Engine.submit_batch``, so callers overlap
  batches instead of blocking on each;
* :mod:`repro.exec.stealing` — :class:`ChunkScheduler`, the shared
  work-stealing chunk scheduler: per-lane deques with
  steal-from-the-richest rebalancing, used by both executors below so a
  slow worker delays a batch by at most one chunk, not its whole dealt
  share;
* :mod:`repro.exec.pool` — :class:`WorkerPool`, a warm process pool
  (plus its shared-memory input segments) reused across batches, with
  idle-timeout reaping;
* :mod:`repro.exec.distributed` — :class:`DistributedExecutor` /
  :class:`LoopbackWorker` and the :mod:`repro.exec.worker` serve loop:
  the ``Executor.map`` contract over sockets, with content-digest-keyed
  ``publish_inputs`` frames so fixed input matrices ship **once per
  worker** instead of once per batch (:class:`PublishedInput` is the
  wire handle), bit-identical to serial execution thanks to per-trial
  ``SeedSequence.spawn`` seeding;
* :mod:`repro.exec.wire` — the quarantined frame codec
  (``8-byte big-endian length || pickle``): the one module allowed to
  deserialize wire bytes (lint rule ``EXC01``), keeping the protocol's
  trust boundary in a single auditable place;
* :mod:`repro.exec.sweep` — :class:`SweepDriver`, resumable (JSONL
  checkpoint journal) adaptive (confidence-interval-targeted) grid
  sweeps over asynchronous batches, with priority-queued scheduling and
  cooperative preemption of adaptive top-up batches.

See ``docs/architecture.md`` for the engine contract this builds on and
``docs/scaling.md`` for the scheduling, wire-protocol, and journal
internals.
"""

from .distributed import DistributedExecutor, LoopbackWorker
from .futures import BatchFuture, as_completed
from .pool import WorkerPool
from .stealing import Chunk, ChunkScheduler
from .sweep import (
    SweepDriver,
    append_journal,
    default_trial_values,
    load_journal,
    params_key,
)
from .wire import MAX_FRAME_BYTES, recv_frame, send_frame
from .worker import PublishedInput

__all__ = [
    "BatchFuture",
    "as_completed",
    "Chunk",
    "ChunkScheduler",
    "WorkerPool",
    "DistributedExecutor",
    "LoopbackWorker",
    "PublishedInput",
    "MAX_FRAME_BYTES",
    "send_frame",
    "recv_frame",
    "SweepDriver",
    "append_journal",
    "default_trial_values",
    "load_journal",
    "params_key",
]
