"""repro.exec — asynchronous job scheduling over the execution engine.

PR 1's engine made the N-trial batch a first-class object; this package
makes *many in-flight batches* first-class.  Four layers, each speaking
the same :class:`~repro.core.engine.Executor` contract so they compose
with every estimator, sweep, and benchmark that already takes
``executor=``:

* :mod:`repro.exec.futures` — :class:`BatchFuture` /
  :func:`as_completed` over ``Engine.submit_batch``, so callers overlap
  batches instead of blocking on each;
* :mod:`repro.exec.pool` — :class:`WorkerPool`, a warm process pool
  (plus its shared-memory input segments) reused across batches, with
  idle-timeout reaping;
* :mod:`repro.exec.distributed` — :class:`DistributedExecutor` /
  :class:`LoopbackWorker` and the :mod:`repro.exec.worker` serve loop:
  the ``Executor.map`` contract over sockets, bit-identical to serial
  execution thanks to per-trial ``SeedSequence.spawn`` seeding;
* :mod:`repro.exec.sweep` — :class:`SweepDriver`, resumable (JSONL
  checkpoint journal) adaptive (confidence-interval-targeted) grid
  sweeps over asynchronous batches.
"""

from .distributed import DistributedExecutor, LoopbackWorker
from .futures import BatchFuture, as_completed
from .pool import WorkerPool
from .sweep import (
    SweepDriver,
    append_journal,
    default_trial_values,
    load_journal,
    params_key,
)

__all__ = [
    "BatchFuture",
    "as_completed",
    "WorkerPool",
    "DistributedExecutor",
    "LoopbackWorker",
    "SweepDriver",
    "append_journal",
    "default_trial_values",
    "load_journal",
    "params_key",
]
