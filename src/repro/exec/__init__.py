"""repro.exec — asynchronous job scheduling over the execution engine.

PR 1's engine made the N-trial batch a first-class object; this package
makes *many in-flight batches* first-class.  Five layers, each speaking
the same :class:`~repro.core.engine.Executor` contract so they compose
with every estimator, sweep, and benchmark that already takes
``executor=``:

* :mod:`repro.exec.futures` — :class:`BatchFuture` /
  :func:`as_completed` over ``Engine.submit_batch``, so callers overlap
  batches instead of blocking on each;
* :mod:`repro.exec.stealing` — :class:`ChunkScheduler`, the shared
  work-stealing chunk scheduler: per-lane deques with
  steal-from-the-richest rebalancing, used by both executors below so a
  slow worker delays a batch by at most one chunk, not its whole dealt
  share;
* :mod:`repro.exec.pool` — :class:`WorkerPool`, a warm process pool
  (plus its shared-memory input segments) reused across batches, with
  idle-timeout reaping;
* :mod:`repro.exec.distributed` — :class:`DistributedExecutor` /
  :class:`LoopbackWorker` and the :mod:`repro.exec.worker` serve loop:
  the ``Executor.map`` contract over sockets, with content-digest-keyed
  ``publish_inputs`` frames so fixed input matrices ship **once per
  worker** instead of once per batch (:class:`PublishedInput` is the
  wire handle), bit-identical to serial execution thanks to per-trial
  ``SeedSequence.spawn`` seeding;
* :mod:`repro.exec.wire` — the schema'd, authenticated frame codec
  (``8-byte big-endian length || schema payload || HMAC-SHA256``): a
  closed vocabulary of versioned frames (callables travel as registered
  names keyed by content digest — code never travels; pickle is banned
  tree-wide by lint rule ``EXC01``), a mutual challenge–response
  handshake deriving a per-session key from a shared secret
  (``REPRO_WIRE_SECRET``), per-frame MACs over strict sequence numbers
  (tamper- and replay-evident published inputs), optional TLS, and
  negotiated payload codecs (``gf2pack`` bit-packs GF(2) matrices to
  one-eighth of raw).  Typed frame errors (:class:`WireProtocolError` /
  :class:`TruncatedFrameError` / :class:`CorruptFrameError` /
  :class:`~repro.exec.wire.AuthenticationError`) mean damaged or forged
  frames can never surface as a silent partial decode;
* :mod:`repro.exec.health` — the failure model's machinery:
  :class:`HealthBoard` (per-worker ``healthy → suspect → dead``
  liveness), :class:`ErrorTelemetry` (per-worker failure counters),
  :class:`RetryPolicy` (bounded backoff with deterministic seed-derived
  jitter), and the loud degradation types
  (:class:`FleetDegradedWarning`, :class:`WorkerTimeoutError`);
* :mod:`repro.exec.faults` — deterministic, replayable fault injection:
  :class:`FaultPlan` (a pure function of a seed, JSON round-trip for
  replay) and :class:`FaultInjector` (crashes, refusals, torn/corrupt
  frames, slow links, lost publishes, hangs), wired into the worker
  serve loop and ``python -m repro.exec.worker --fault-plan``;
* :mod:`repro.exec.sweep` — :class:`SweepDriver`, resumable (JSONL
  checkpoint journal) adaptive (confidence-interval-targeted) grid
  sweeps over asynchronous batches, with priority-queued scheduling,
  cooperative preemption of adaptive top-up batches, and bounded
  seed-identical retry of batches lost to fleet outages.

See ``docs/architecture.md`` for the engine contract this builds on,
``docs/scaling.md`` for the scheduling, wire-protocol, and journal
internals, and ``docs/robustness.md`` for the failure model and the
fault-injection harness.
"""

from .distributed import DistributedExecutor, LoopbackWorker
from .faults import (
    FAULT_KINDS,
    FaultEvent,
    FaultInjector,
    FaultPlan,
)
from .futures import BatchFuture, as_completed
from .health import (
    DEAD,
    HEALTHY,
    SUSPECT,
    ErrorTelemetry,
    FleetDegradedWarning,
    HealthBoard,
    RetryPolicy,
    WorkerHealth,
    WorkerTimeoutError,
)
from .pool import WorkerPool
from .stealing import Chunk, ChunkScheduler
from .sweep import (
    SweepDriver,
    append_journal,
    default_trial_values,
    load_journal,
    params_key,
)
from .wire import (
    MAX_FRAME_BYTES,
    AuthenticationError,
    CorruptFrameError,
    FrameAuthenticationError,
    TruncatedFrameError,
    UnencodableError,
    WireProtocolError,
    WireSession,
    recv_frame,
    register_wire_function,
    register_wire_type,
    send_frame,
)
from .worker import PublishedInput

__all__ = [
    "BatchFuture",
    "as_completed",
    "Chunk",
    "ChunkScheduler",
    "WorkerPool",
    "DistributedExecutor",
    "LoopbackWorker",
    "PublishedInput",
    "MAX_FRAME_BYTES",
    "send_frame",
    "recv_frame",
    "WireProtocolError",
    "TruncatedFrameError",
    "CorruptFrameError",
    "AuthenticationError",
    "FrameAuthenticationError",
    "UnencodableError",
    "WireSession",
    "register_wire_function",
    "register_wire_type",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "HEALTHY",
    "SUSPECT",
    "DEAD",
    "WorkerHealth",
    "HealthBoard",
    "ErrorTelemetry",
    "RetryPolicy",
    "FleetDegradedWarning",
    "WorkerTimeoutError",
    "SweepDriver",
    "append_journal",
    "default_trial_values",
    "load_journal",
    "params_key",
]
