"""Deterministic, replayable fault injection for the distributed stack.

Ordinary chaos testing flips coins at runtime; every trial in this repo
is seed-deterministic, so fault schedules can be too.  A
:class:`FaultPlan` is a pure function of a seed: it pins, per worker
*site* and per protocol operation, exactly which fault fires — and it
round-trips through JSON, so the schedule that broke a CI run is an
artifact you download and replay locally, byte for byte.

The fault vocabulary (:data:`FAULT_KINDS`) covers the failure model of
``docs/robustness.md``:

========================  ====================================================
kind                      effect at the worker
========================  ====================================================
``"crash"``               close the connection instead of replying
``"refuse"``              accept the connection, then close it immediately
                          (a reset on first use — the observable shape of a
                          refused/reset connection injected from inside a
                          listening process)
``"drop_mid_frame"``      send the length prefix and half the reply payload,
                          then close — a torn frame
``"truncate"``            send a length prefix that promises more bytes than
                          ever arrive, then close
``"corrupt"``             send a full-length reply whose payload bytes are
                          flipped — undecodable garbage
``"slow"``                sleep ``delay`` seconds, then answer normally —
                          a slow link / overloaded host
``"lose_publish"``        acknowledge a ``publish_inputs`` frame but drop the
                          matrix — a lost published-input frame (the client
                          believes the worker holds inputs it does not)
``"hang"``                stop answering **every** connection of this worker,
                          forever (sticky) — a wedged process, detectable
                          only by heartbeat / deadline
========================  ====================================================

Injection points: :func:`repro.exec.worker.serve` consults a
:class:`FaultInjector` on every accepted connection and every received
frame (``LoopbackWorker(fault_injector=...)`` for in-process chaos,
``python -m repro.exec.worker --fault-plan plan.json`` for
real-subprocess chaos).  The invariant the conformance suite
(``tests/conformance/test_fault_matrix.py``) pins: under **any** fault
schedule, batch results are bit-identical to
:class:`~repro.core.engine.SerialExecutor`, or the failure is a loud
typed error — never silent partial or wrong output.

>>> plan = FaultPlan.from_seed(7, sites=("worker-0",))
>>> plan == FaultPlan.from_json(plan.to_json())       # replayable
True
>>> plan == FaultPlan.from_seed(7, sites=("worker-0",))  # deterministic
True
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

import numpy as np

from ..core.randomness import expand_seed
from ..obs.recorder import FlightRecorder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .wire import WireSession

__all__ = [
    "FAULT_KINDS",
    "MANGLE_KINDS",
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "send_mangled",
]

#: Every injectable fault kind.
FAULT_KINDS = (
    "crash",
    "refuse",
    "drop_mid_frame",
    "truncate",
    "corrupt",
    "slow",
    "lose_publish",
    "hang",
)

#: Kinds applied by mangling the reply frame's bytes on the wire.
MANGLE_KINDS = frozenset({"drop_mid_frame", "truncate", "corrupt"})

#: Kinds :meth:`FaultPlan.from_seed` schedules by default.  ``hang`` is
#: excluded (it stalls until the heartbeat/deadline machinery fires —
#: schedule it explicitly when that is the behaviour under test), as is
#: ``refuse`` on the *map* scope (it lives on the ``accept`` scope).
DEFAULT_KINDS = (
    "crash",
    "refuse",
    "drop_mid_frame",
    "truncate",
    "corrupt",
    "slow",
    "lose_publish",
)

#: The operation scope each kind schedules against.
_SCOPE_FOR_KIND = {
    "refuse": "accept",
    "lose_publish": "publish",
}
_SCOPES = ("accept", "map", "publish", "ping", "release")


def _scope_for(kind: str) -> str:
    return _SCOPE_FOR_KIND.get(kind, "map")


@dataclass(frozen=True)
class FaultEvent:
    """One planned fault: at operation ``op`` of ``scope``, inject ``kind``.

    ``op`` counts operations of that scope observed by the worker's
    injector from process start: accepted connections for ``accept``,
    map frames for ``map``, publish frames for ``publish``, and so on.
    ``delay`` is the injected latency for ``"slow"`` (ignored
    otherwise).
    """

    scope: str
    op: int
    kind: str
    delay: float = 0.0

    def __post_init__(self) -> None:
        if self.scope not in _SCOPES:
            raise ValueError(f"unknown fault scope {self.scope!r}")
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.op < 0:
            raise ValueError("fault op index must be >= 0")
        if self.delay < 0:
            raise ValueError("fault delay must be >= 0")


class FaultPlan:
    """A deterministic schedule of faults, per worker site.

    A *site* is a string naming one worker (``"worker-0"`` …); each site
    owns an independent list of :class:`FaultEvent`.  Plans are value
    objects: equality compares the full schedule, and
    :meth:`to_json` / :meth:`from_json` round-trip it exactly — the
    replay path for a schedule that surfaced a bug.
    """

    def __init__(self, events_by_site: Mapping[str, Iterable[FaultEvent]]):
        self._events: dict[str, tuple[FaultEvent, ...]] = {
            str(site): tuple(events)
            for site, events in events_by_site.items()
        }
        for site, events in self._events.items():
            seen: set[tuple[str, int]] = set()
            for event in events:
                key = (event.scope, event.op)
                if key in seen:
                    raise ValueError(
                        f"site {site!r} schedules two faults at "
                        f"{event.scope}[{event.op}]"
                    )
                seen.add(key)

    @property
    def sites(self) -> tuple[str, ...]:
        return tuple(self._events)

    def events(self, site: str) -> tuple[FaultEvent, ...]:
        """The site's schedule (empty for unknown sites — no faults)."""
        return self._events.get(site, ())

    def injector(
        self, site: str, recorder: "FlightRecorder | None" = None
    ) -> "FaultInjector":
        """A fresh injector applying this plan's schedule for ``site``."""
        return FaultInjector(self.events(site), site=site, recorder=recorder)

    # -- construction ---------------------------------------------------
    @classmethod
    def from_seed(
        cls,
        seed: int,
        sites: Sequence[str] = ("worker-0",),
        kinds: Sequence[str] = DEFAULT_KINDS,
        rate: float = 0.15,
        horizon: int = 32,
        max_delay: float = 0.05,
    ) -> "FaultPlan":
        """Derive a schedule from ``seed`` — a pure function of its inputs.

        For each site, each scope with an applicable kind draws
        ``horizon`` Bernoulli(``rate``) coins (one per operation index)
        from ``expand_seed(SeedSequence(seed, spawn_key=(site_index,
        scope_index)))``; a hit schedules a uniformly chosen applicable
        kind (``"slow"`` also draws its delay, uniform on
        ``(max_delay/10, max_delay]``).  Same arguments, same plan —
        always.
        """
        if not 0 <= rate <= 1:
            raise ValueError("fault rate must lie in [0, 1]")
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        unknown = set(kinds) - set(FAULT_KINDS)
        if unknown:
            raise ValueError(f"unknown fault kinds: {sorted(unknown)}")
        by_scope: dict[str, list[str]] = {}
        for kind in kinds:
            by_scope.setdefault(_scope_for(kind), []).append(kind)
        events_by_site: dict[str, list[FaultEvent]] = {}
        for site_index, site in enumerate(sites):
            events: list[FaultEvent] = []
            for scope_index, scope in enumerate(_SCOPES):
                scoped_kinds = sorted(by_scope.get(scope, []))
                if not scoped_kinds:
                    continue
                rng = expand_seed(
                    np.random.SeedSequence(
                        seed, spawn_key=(site_index, scope_index)
                    )
                )
                for op in range(horizon):
                    if float(rng.uniform()) >= rate:
                        continue
                    kind = scoped_kinds[int(rng.integers(len(scoped_kinds)))]
                    delay = 0.0
                    if kind == "slow":
                        delay = float(
                            rng.uniform(max_delay / 10.0, max_delay)
                        )
                    events.append(FaultEvent(scope, op, kind, delay))
            events_by_site[site] = events
        return cls(events_by_site)

    # -- replay serialization -------------------------------------------
    def to_json(self) -> str:
        """The full schedule as JSON (the CI replay artifact format)."""
        return json.dumps(
            {
                "version": 1,
                "sites": {
                    site: [
                        {
                            "scope": event.scope,
                            "op": event.op,
                            "kind": event.kind,
                            "delay": event.delay,
                        }
                        for event in events
                    ]
                    for site, events in self._events.items()
                },
            },
            indent=2,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_json` output (exact round-trip)."""
        payload = json.loads(text)
        if payload.get("version") != 1:
            raise ValueError(
                f"unsupported fault-plan version {payload.get('version')!r}"
            )
        return cls(
            {
                site: [
                    FaultEvent(
                        scope=str(raw["scope"]),
                        op=int(raw["op"]),
                        kind=str(raw["kind"]),
                        delay=float(raw.get("delay", 0.0)),
                    )
                    for raw in events
                ]
                for site, events in payload["sites"].items()
            }
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultPlan):
            return NotImplemented
        return self._events == other._events

    def __repr__(self) -> str:
        total = sum(len(events) for events in self._events.values())
        return (
            f"FaultPlan(sites={list(self._events)!r}, events={total})"
        )


class FaultInjector:
    """Applies one site's schedule inside a worker serve loop.

    The serve loop consults :meth:`next_fault` once per operation
    (accepted connection, received frame); the injector counts
    operations per scope and returns the planned :class:`FaultEvent`
    when the counter hits a scheduled ``op`` — otherwise ``None``.
    ``injected`` records every fault actually applied, in order, for
    assertions and postmortems.

    ``"hang"`` is *sticky*: once it fires, :attr:`hung` stays true and
    every connection of this worker (including fresh heartbeat probes)
    blocks in :meth:`wait_while_hung` until :meth:`stop` — modelling a
    wedged process, whose accept queue still completes TCP handshakes
    while the application answers nothing.
    """

    def __init__(
        self,
        events: Iterable[FaultEvent],
        site: str = "worker-0",
        recorder: "FlightRecorder | None" = None,
    ):
        self.site = site
        self._by_key: dict[tuple[str, int], FaultEvent] = {
            (event.scope, event.op): event for event in events
        }
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._stop = threading.Event()
        self._hung = False
        #: Faults applied so far, in application order.
        self.injected: list[FaultEvent] = []
        #: Optional flight recorder: every applied fault is recorded as
        #: a ``fault_injected`` event, so a chaos dump interleaves the
        #: injections with the health transitions they caused.
        self.recorder = recorder

    def next_fault(self, scope: str) -> "FaultEvent | None":
        """Advance the scope's op counter; the fault planned there, if any."""
        with self._lock:
            op = self._counters.get(scope, 0)
            self._counters[scope] = op + 1
            event = self._by_key.get((scope, op))
            if event is not None:
                self.injected.append(event)
        if event is not None and self.recorder is not None:
            self.recorder.record(
                "fault_injected",
                site=self.site,
                scope=event.scope,
                op=event.op,
                fault=event.kind,
            )
        return event

    @property
    def hung(self) -> bool:
        with self._lock:
            return self._hung

    def hang(self) -> None:
        """Enter the sticky hung state and block until :meth:`stop`."""
        with self._lock:
            self._hung = True
        self.wait_while_hung()

    def wait_while_hung(self) -> None:
        """Block (a connection of a hung worker) until shutdown."""
        self._stop.wait()

    def stop(self) -> None:
        """Release every hung connection (called at serve-loop exit)."""
        self._stop.set()


def send_mangled(session: "WireSession", obj: object, kind: str) -> None:
    """Send ``obj`` as a deliberately damaged frame (the fault's payload).

    The frame is produced by the *authenticated* session
    (:meth:`~repro.exec.wire.WireSession.frame_bytes` — a legitimate
    schema payload with a valid MAC and the correct sequence number) and
    damaged only afterwards, so a chaos cell exercises the receiver's
    verification path, not a codepath no honest peer could reach.  The
    damage is deterministic in the frame bytes: ``"truncate"`` promises
    the full length and sends nothing, ``"drop_mid_frame"`` sends half
    the payload, ``"corrupt"`` flips the first eight payload bytes and
    every 97th after that — the MAC no longer verifies, so the client
    *must* fail with a typed
    :class:`~repro.exec.wire.FrameAuthenticationError` rather than
    decode a plausible wrong object.  The caller closes the connection
    afterwards, so torn frames surface immediately as
    :class:`~repro.exec.wire.TruncatedFrameError` instead of waiting out
    a socket timeout.
    """
    if kind not in MANGLE_KINDS:
        raise ValueError(f"{kind!r} is not a frame-mangling fault kind")
    header, chunks, mac = session.frame_bytes(obj)
    payload = b"".join(chunks)
    if kind == "truncate":
        session.sock.sendall(header)
        return
    if kind == "drop_mid_frame":
        session.sock.sendall(header + payload[: max(1, len(payload) // 2)])
        return
    damaged = bytearray(payload)
    for index in range(len(damaged)):
        if index < 8 or index % 97 == 0:
            damaged[index] ^= 0xFF
    session.sock.sendall(header + bytes(damaged) + mac)
