"""Futures over in-flight batches: ``BatchFuture`` and ``as_completed``.

:meth:`repro.core.engine.Engine.submit_batch` returns a
:class:`BatchFuture` — a thin, typed wrapper over
:class:`concurrent.futures.Future` that resolves to the batch's
:class:`~repro.core.engine.BatchResult`.  The wrapper exists so batch
consumers get a stable surface (``result`` / ``done`` / ``cancel`` /
``then``) independent of which thread or process pool actually carries
the work, and so derived values (an accuracy, a decision vector) can be
futures too without re-submitting anything: :meth:`BatchFuture.then`
returns a new future sharing the same underlying computation, applying a
transform lazily on first ``result()``.

Determinism note: a future never influences seeding.  Whether a batch is
awaited immediately, last, or via :func:`as_completed`, its trials are
seeded purely from its spec, so asynchronous results are bit-identical
to their blocking counterparts.

>>> import numpy as np
>>> from repro.core import Engine, RunSpec
>>> from repro.protocols import GlobalParityProtocol
>>> spec = RunSpec(
...     protocol=GlobalParityProtocol(),
...     inputs=np.eye(2, dtype=np.uint8),  # two 1-bits: parity 0
...     seed=0,
... )
>>> with Engine() as engine:
...     future = engine.submit_batch(spec, trials=4)
...     rate = future.then(lambda batch: float(batch.decisions(0).mean()))
...     rate.result(timeout=30)
0.0
"""

from __future__ import annotations

import concurrent.futures
import threading
from typing import Any, Callable, Iterable, Iterator, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.engine import RunSpec

__all__ = ["BatchFuture", "as_completed"]

_UNSET = object()


class BatchFuture:
    """Handle to a batch scheduled with ``Engine.submit_batch``.

    Parameters
    ----------
    inner:
        The :class:`concurrent.futures.Future` carrying the computation.
    spec, trials:
        The submitted spec and trial count, kept for introspection.
    transform:
        Optional function applied to the source result (used by
        :meth:`then`); evaluated lazily in the waiting thread and cached.
    source:
        The parent :class:`BatchFuture` a derived future reads its input
        from — via the parent's own ``result()``, so a chain evaluates
        (and caches) each link exactly once.  ``None`` reads the inner
        future directly.
    """

    def __init__(
        self,
        inner: concurrent.futures.Future,
        spec: "RunSpec | None" = None,
        trials: int | None = None,
        transform: Callable[[Any], Any] | None = None,
        source: "BatchFuture | None" = None,
    ):
        self._inner = inner
        self.spec = spec
        self.trials = trials
        self._transform = transform
        self._source = source
        self._transformed: Any = _UNSET
        self._transform_error: BaseException | None = None
        self._lock = threading.Lock()

    # -- state ----------------------------------------------------------
    def done(self) -> bool:
        """True once the batch finished, raised, or was cancelled."""
        return self._inner.done()

    def running(self) -> bool:
        """True while the batch is executing on a submission thread."""
        return self._inner.running()

    def cancelled(self) -> bool:
        """True if the batch was cancelled before it started."""
        return self._inner.cancelled()

    def cancel(self) -> bool:
        """Cancel the batch if it has not started; True on success.

        A batch already executing cannot be interrupted (trials run to
        completion); queued batches — beyond the engine's ``max_inflight``
        dispatch threads — are removed before any work happens.
        """
        return self._inner.cancel()

    # -- results --------------------------------------------------------
    def result(self, timeout: float | None = None) -> Any:
        """Block until the batch completes; return its (transformed) result.

        Re-raises the batch's exception if it failed and
        :class:`concurrent.futures.CancelledError` if it was cancelled.
        """
        if self._source is not None:
            value = self._source.result(timeout)
        else:
            value = self._inner.result(timeout)
        if self._transform is None:
            return value
        with self._lock:
            if self._transform_error is not None:
                raise self._transform_error
            if self._transformed is _UNSET:
                try:
                    self._transformed = self._transform(value)
                except BaseException as exc:
                    self._transform_error = exc
                    raise
            return self._transformed

    def exception(self, timeout: float | None = None) -> BaseException | None:
        """The exception the batch — or any then-transform — raised.

        ``None`` means :meth:`result` will succeed; mirrors
        :meth:`concurrent.futures.Future.exception` (cancellation and
        wait timeouts still raise).  Checking a derived future evaluates
        its transform chain, since that is what decides its outcome.
        """
        if self._transform is None and self._source is None:
            return self._inner.exception(timeout)
        try:
            self.result(timeout)
            return None
        except concurrent.futures.CancelledError:
            raise
        except concurrent.futures.TimeoutError:
            raise
        except BaseException as exc:  # noqa: BLE001 - reported, not raised
            return exc

    def add_done_callback(self, fn: Callable[["BatchFuture"], None]) -> None:
        """Call ``fn(self)`` when the batch completes (or immediately if done)."""
        self._inner.add_done_callback(lambda _inner: fn(self))

    # -- composition ----------------------------------------------------
    def then(self, fn: Callable[[Any], Any]) -> "BatchFuture":
        """A future for ``fn(result)`` sharing this future's computation.

        Nothing is re-submitted: the derived future completes when this
        one does, and ``fn`` runs lazily (once, cached) in whichever
        thread first asks for the derived ``result()``.  The derived
        future reads this one's cached result, so a chain evaluates each
        link's transform exactly once no matter how many descendants (or
        repeat ``result()`` calls) consume it.  Cancelling either future
        cancels the shared underlying batch.
        """
        return BatchFuture(
            self._inner,
            spec=self.spec,
            trials=self.trials,
            transform=fn,
            source=self,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "cancelled" if self.cancelled()
            else "done" if self.done()
            else "running" if self.running()
            else "pending"
        )
        return f"BatchFuture({state}, trials={self.trials})"


def as_completed(
    futures: Iterable[BatchFuture], timeout: float | None = None
) -> Iterator[BatchFuture]:
    """Yield futures as their batches finish, soonest first.

    The asynchronous analogue of iterating a sweep grid in order: submit
    everything, then consume results in completion order.  Futures derived
    with :meth:`BatchFuture.then` share their parent's computation and are
    yielded at the same moment the parent would be.

    ``timeout`` bounds the **total** wait, exactly like
    :func:`concurrent.futures.as_completed`: every future that finishes
    in time is yielded, then :class:`concurrent.futures.TimeoutError`
    is raised if any remain — the in-flight batches themselves keep
    running and can still be awaited afterwards.

    >>> import numpy as np
    >>> from repro.core import Engine, RunSpec
    >>> from repro.protocols import GlobalParityProtocol
    >>> spec = RunSpec(
    ...     protocol=GlobalParityProtocol(),
    ...     inputs=np.eye(2, dtype=np.uint8),
    ...     seed=0,
    ... )
    >>> with Engine() as engine:
    ...     futures = [engine.submit_batch(spec, trials=2) for _ in range(3)]
    ...     sorted(len(f.result()) for f in as_completed(futures, timeout=30))
    [2, 2, 2]
    """
    futures = list(futures)
    by_inner: dict[concurrent.futures.Future, list[BatchFuture]] = {}
    for future in futures:
        by_inner.setdefault(future._inner, []).append(future)
    for inner in concurrent.futures.as_completed(list(by_inner), timeout=timeout):
        yield from by_inner[inner]
