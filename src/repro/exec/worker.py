"""The distributed worker: an authenticated serve loop for task frames.

One worker process serves one or more client connections.  Every
connection starts with the :class:`~repro.exec.wire.WireSession`
challenge–response handshake (mutual HMAC proofs over a per-worker
shared secret, optional TLS underneath); after it, each frame is
schema-encoded — **never pickle** — and carries a MAC over the session
nonce and a strict sequence number, so a tampered or replayed frame is
refused before it is even decoded.  The frame vocabulary is closed:

* ``("ping",)`` → ``("pong",)`` — liveness probe;
* ``("register_fn", digest, fn_bytes)`` → ``("ok", None)`` — cache the
  schema-encoded task callable under its content ``digest``.  The
  worker verifies the digest against the bytes, stores them **encoded**,
  and decodes a fresh callable per map frame — decoding resolves only
  :func:`~repro.exec.wire.register_wire_function` /
  :func:`~repro.exec.wire.register_wire_type` names, so the worker never
  executes code shipped in a frame, it looks up code it already has;
* ``("map", fn_digest, items)`` → ``("ok", [fn(x) for x in items])`` on
  success or ``("err", exception, traceback_text)`` if a task raised —
  the client re-raises task errors, exactly like a local executor
  would.  A map naming a digest this worker does not hold is answered
  ``("need_fn", digest)`` and the client re-registers (how a restarted
  worker transparently refills).  A tracing client appends a span-context
  id as an optional fourth element; workers accept both shapes;
* ``("publish_inputs", digest, shape, dtype, codec, data)`` →
  ``("ok", None)`` — cache a fixed input matrix under its content
  ``digest``; ``codec`` is negotiated per session (``gf2pack`` bit-packs
  GF(2) matrices to an eighth of the raw bytes).  The cache is shared by
  every connection of this serve loop and survives across connections
  and map calls, so a client re-running batches over the same inputs
  ships the matrix **once per worker**, not once per batch.  A map whose
  function references a digest this worker does not hold is answered
  ``("need", digest)`` and the client republishes;
* ``("release_inputs", digest)`` → ``("ok", None)`` — drop a cached
  matrix (sent by ``DistributedExecutor.close``);
* closing the connection ends the session.

Authentication is mandatory; the shared secret comes from
``--secret-file``, the ``REPRO_WIRE_SECRET`` environment variable, or
(for loopback development only) the well-known dev secret.  ``--tls-cert``
/ ``--tls-key`` additionally wrap every connection in TLS.  See
``docs/robustness.md`` for the threat model and key distribution.

Run a worker from the command line::

    python -m repro.exec.worker --host 0.0.0.0 --port 9123 --processes 4 \\
        --secret-file /run/secrets/repro-wire

``--processes k`` executes tasks through one local process pool of ``k``
workers shared by every connection, so one remote host contributes up to
``k`` cores in total; the default runs tasks inline in each connection's
serving thread.  ``--fault-plan plan.json`` (with ``--fault-site``)
arms the serve loop with a deterministic
:class:`~repro.exec.faults.FaultPlan` schedule — real-subprocess chaos
for the conformance suite; see ``docs/robustness.md``.
:func:`serve` is also importable directly, which is how the in-process
:class:`~repro.exec.distributed.LoopbackWorker` used by the test-suite
hosts the same loop on a background thread.

>>> import socket
>>> left, right = socket.socketpair()
>>> send_frame(left, ("ping",))
>>> recv_frame(right)
('ping',)
>>> left.close(); right.close()
"""

from __future__ import annotations

import argparse
import logging
import socket
import threading
import time
import traceback
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from ..core.engine import _content_digest, _create_shared_segment, _SharedInput
from ..obs.metrics import MetricsRegistry
from ..obs.trace import NULL_TRACER, NullTracer, Tracer
from .faults import MANGLE_KINDS, FaultEvent, FaultInjector, FaultPlan, send_mangled
from .wire import (
    MAX_FRAME_BYTES,
    CorruptFrameError,
    FrameAuthenticationError,
    SchemaViolationError,
    WireProtocolError,
    WireSession,
    decode_array_payload,
    decode_value,
    function_digest,
    recv_frame,
    send_frame,
)

logger = logging.getLogger(__name__)

if TYPE_CHECKING:  # pragma: no cover - typing only
    import ssl
    from concurrent.futures import ProcessPoolExecutor

#: ``send_frame`` / ``recv_frame`` are re-exported for backward
#: compatibility; they live in :mod:`repro.exec.wire` (the schema codec
#: module) together with the session machinery.
__all__ = [
    "PublishedInput",
    "MAX_FRAME_BYTES",
    "send_frame",
    "recv_frame",
    "serve",
    "main",
]


class PublishedInput:
    """Wire-protocol handle to a fixed input matrix cached on a worker.

    The distributed twin of the shared-memory ``_SharedInput`` handle:
    instead of encoding a large fixed input matrix into every map frame,
    the client publishes it once per worker (``publish_inputs`` frame,
    keyed by content ``digest``) and subsequent frames carry only this
    handle.  The serve loop *binds* the handle to its cached array
    before executing the chunk — :meth:`attach` (called by the engine's
    trial runner) then returns the bound array.

    Serialization is asymmetric on purpose: an **unbound** handle
    serializes to digest + metadata only (what travels over the wire).
    On the worker, the serve loop binds the handle before executing the
    chunk — either to the cached array directly (inline execution), or
    to a shared-memory segment (:meth:`bind_shared`) when the chunk is
    headed for the worker's optional local process pool, so a large
    matrix is **not** re-serialized into every chunk of the
    serve-to-pool hop.
    """

    __slots__ = ("digest", "shape", "dtype_str", "_array", "_shared")

    def __init__(
        self,
        digest: str,
        shape: tuple[int, ...],
        dtype_str: str,
        array: "np.ndarray | None" = None,
    ):
        self.digest = digest
        self.shape = tuple(shape)
        self.dtype_str = dtype_str
        self._array = array
        self._shared: _SharedInput | None = None

    @property
    def bound(self) -> bool:
        """True once the worker resolved the digest to its cached matrix."""
        return self._array is not None or self._shared is not None

    def bind(self, array: np.ndarray) -> None:
        """Resolve the handle to the worker's cached matrix."""
        self._array = array

    def bind_shared(self, shared: "_SharedInput") -> None:
        """Resolve the handle to a shared-memory segment of the matrix.

        A handle bound this way serializes as the segment reference, so
        a worker's local process pool attaches the one machine-wide copy
        instead of receiving the bytes inside every chunk.
        """
        self._shared = shared

    def attach(self) -> np.ndarray:
        """The bound input matrix (the trial runner's accessor)."""
        if self._array is None:
            if self._shared is None:
                raise LookupError(
                    f"inputs {self.digest[:12]}… were never published to "
                    "this worker (protocol error: expected a "
                    "('need', digest) reply)"
                )
            self._array = self._shared.attach()
        return self._array

    def __getstate__(self) -> tuple[Any, ...]:
        # Prefer the segment reference when present: the array itself
        # must not ride along too.
        array = None if self._shared is not None else self._array
        return (self.digest, self.shape, self.dtype_str, array, self._shared)

    def __setstate__(self, state: tuple[Any, ...]) -> None:
        (self.digest, self.shape, self.dtype_str, self._array, self._shared) = state


class _InputStore:
    """One serve loop's cache of published input matrices.

    LRU-bounded (a worker serving many clients — or one client sweeping
    over many distinct matrices — must not grow without limit; eviction
    is safe because a map referencing an evicted digest gets a
    ``("need", digest)`` reply and the client republishes).  For workers
    running a local process pool, the store also materialises a
    shared-memory segment per digest on demand, so pool tasks attach one
    machine-wide copy instead of deserializing the matrix per chunk.
    """

    def __init__(self, max_entries: int = 32):
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._arrays: dict[str, np.ndarray] = {}
        self._segments: dict[str, tuple[Any, _SharedInput]] = {}
        #: digest → chunks currently executing against its segment; an
        #: unlink requested while users remain is deferred (``_doomed``)
        #: until the last user finishes — unlinking earlier would make a
        #: queued pool task's ``SharedMemory(name=...)`` attach fail.
        self._users: dict[str, int] = {}
        self._doomed: set[str] = set()

    def put(self, digest: str, array: np.ndarray) -> None:
        """Store a decoded ``publish_inputs`` matrix under its digest."""
        with self._lock:
            self._arrays.pop(digest, None)
            self._arrays[digest] = array
            while len(self._arrays) > self.max_entries:
                oldest = next(iter(self._arrays))
                del self._arrays[oldest]
                self._unlink(oldest)

    def get(self, digest: str) -> "np.ndarray | None":
        with self._lock:
            return self._arrays.get(digest)

    def shared_handle(self, digest: str) -> "_SharedInput | None":
        """A shared-memory handle to the matrix, created lazily.

        Registers the caller as a segment user; pair every successful
        call with :meth:`done_with_shared` once the chunk finished.
        """
        with self._lock:
            array = self._arrays.get(digest)
            if array is None:
                return None
            cached = self._segments.get(digest)
            if cached is None:
                cached = _create_shared_segment(np.ascontiguousarray(array))
                self._segments[digest] = cached
                self._doomed.discard(digest)
            self._users[digest] = self._users.get(digest, 0) + 1
            return cached[1]

    def done_with_shared(self, digest: str) -> None:
        """Drop a chunk's claim on a segment; unlink if doomed and idle."""
        with self._lock:
            count = self._users.get(digest, 0) - 1
            if count > 0:
                self._users[digest] = count
                return
            self._users.pop(digest, None)
            if digest in self._doomed:
                self._doomed.discard(digest)
                self._unlink(digest)

    def release(self, digest: str) -> None:
        with self._lock:
            self._arrays.pop(digest, None)
            self._unlink(digest)

    def _unlink(self, digest: str) -> None:
        # Caller holds the lock.  Already-attached pool views survive a
        # POSIX unlink; a chunk that has not attached *yet* would fail,
        # so segments with live users are doomed instead and unlinked by
        # the last done_with_shared.
        if self._users.get(digest):
            if digest in self._segments:
                self._doomed.add(digest)
            return
        cached = self._segments.pop(digest, None)
        if cached is not None:
            block, _handle = cached
            block.close()
            block.unlink()

    def close(self) -> None:
        with self._lock:
            self._arrays.clear()
            self._users.clear()  # serve is exiting; force the unlinks
            for digest in list(self._segments):
                self._unlink(digest)


class _FnStore:
    """One serve loop's cache of registered task callables, **encoded**.

    Bytes in, bytes out: the store never holds decoded callables — each
    map frame decodes a fresh instance, so per-chunk binding semantics
    (a ``PublishedInput`` bound for one chunk) never leak across frames,
    and eviction is as safe as for inputs (a map naming an evicted
    digest gets ``("need_fn", digest)`` and the client re-registers).
    """

    def __init__(self, max_entries: int = 64):
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._encoded: dict[str, bytes] = {}

    def put(self, digest: str, fn_bytes: bytes) -> None:
        if function_digest(fn_bytes) != digest:
            raise SchemaViolationError(
                f"register_fn digest mismatch for {digest[:12]}…"
            )
        with self._lock:
            self._encoded.pop(digest, None)
            self._encoded[digest] = fn_bytes
            while len(self._encoded) > self.max_entries:
                del self._encoded[next(iter(self._encoded))]

    def get(self, digest: str) -> "bytes | None":
        with self._lock:
            encoded = self._encoded.get(digest)
            if encoded is not None:
                # Refresh the LRU position: a hot callable must not be
                # the one evicted under churn.
                self._encoded.pop(digest)
                self._encoded[digest] = encoded
            return encoded


def _run_chunk(
    fn: Callable[[Any], Any],
    items: list[Any],
    pool: "ProcessPoolExecutor | None",
) -> list[Any]:
    if pool is None:
        return [fn(item) for item in items]
    return list(pool.map(fn, items))


#: Frame kind → the fault scope its replies are scheduled under.
#: ``register_fn`` shares the ``publish`` scope: both are idempotent
#: content-addressed uploads with the same self-healing reply path.
_FRAME_SCOPES = {
    "ping": "ping",
    "publish_inputs": "publish",
    "register_fn": "publish",
    "release_inputs": "release",
    "map": "map",
}


def _reply(session: WireSession, obj: Any, fault: "FaultEvent | None") -> bool:
    """Send a reply frame, mangled if the planned fault says so.

    Returns ``False`` when the connection must close afterwards (a
    mangled frame is followed by a close, so the client's decoder sees
    the damage immediately instead of waiting out a socket timeout).
    """
    if fault is not None and fault.kind in MANGLE_KINDS:
        send_mangled(session, obj, fault.kind)
        return False
    session.send(obj)
    return True


def _task_error_reply(exc: BaseException) -> tuple[Any, ...]:
    return ("err", exc, traceback.format_exc())


def _handle_connection(
    conn: socket.socket,
    pool: "ProcessPoolExecutor | None",
    max_requests: int | None,
    input_store: _InputStore,
    fn_store: _FnStore,
    request_delay: float = 0.0,
    fault_injector: "FaultInjector | None" = None,
    tracer: "Tracer | NullTracer" = NULL_TRACER,
    secret: "bytes | str | None" = None,
    ssl_context: "ssl.SSLContext | None" = None,
    registry: "MetricsRegistry | None" = None,
) -> None:
    """Serve one client until it disconnects (or ``max_requests`` frames).

    The connection is TLS-wrapped first (when the serve loop has a
    server context) and then authenticated with the
    :class:`~repro.exec.wire.WireSession` handshake; a failed handshake
    is logged, counted (``worker_handshakes_total{outcome=...}``), and
    closed without serving a single frame.  ``max_requests`` counts
    post-handshake frames — fault-injection for tests: a worker that
    hangs up after N frames exercises the client's mid-batch
    redistribution path deterministically.  ``request_delay`` sleeps
    that long before each map frame — latency injection modelling a
    slow or overloaded host (see ``benchmarks/bench_exec_steal.py``).
    ``input_store`` / ``fn_store`` are the serve loop's digest-keyed
    stores of published inputs and registered callables, shared across
    this worker's connections.  ``fault_injector`` is consulted once per
    received frame and applies the richer planned-fault vocabulary of
    :mod:`repro.exec.faults`.
    """
    try:
        try:
            if ssl_context is not None:
                conn = ssl_context.wrap_socket(conn, server_side=True)
            session = WireSession.server(conn, secret)
        except WireProtocolError as exc:
            if registry is not None:
                registry.counter(
                    "worker_handshakes_total", outcome="auth"
                ).inc()
            logger.warning("handshake failed: %s", exc)
            return
        except (OSError, EOFError) as exc:
            if registry is not None:
                registry.counter(
                    "worker_handshakes_total", outcome="error"
                ).inc()
            logger.warning("handshake transport failure: %s", exc)
            return
        if registry is not None:
            registry.counter("worker_handshakes_total", outcome="ok").inc()
        served = 0
        while max_requests is None or served < max_requests:
            if fault_injector is not None and fault_injector.hung:
                # A wedged process answers nothing on any connection —
                # including this one, mid-session.
                fault_injector.wait_while_hung()
                return
            try:
                message = session.recv()
            except (FrameAuthenticationError, CorruptFrameError) as exc:
                # A client-side frame that fails verification or schema
                # decoding: refuse it loudly (counted) and drop the
                # connection — never execute a frame that did not verify.
                if registry is not None:
                    reason = (
                        "auth"
                        if isinstance(exc, FrameAuthenticationError)
                        else "corrupt"
                    )
                    registry.counter(
                        "worker_frames_rejected_total", reason=reason
                    ).inc()
                logger.warning("rejected inbound frame: %s", exc)
                return
            except ConnectionError:
                return
            if not (
                isinstance(message, tuple)
                and message
                and isinstance(message[0], str)
            ):
                session.send(
                    ("err", SchemaViolationError("malformed frame"), "")
                )
                continue
            kind = message[0]
            fault = (
                fault_injector.next_fault(_FRAME_SCOPES.get(kind, "map"))
                if fault_injector is not None
                else None
            )
            if fault is not None:
                if fault.kind == "hang":
                    fault_injector.hang()
                    return
                if fault.kind == "crash":
                    # Close without replying: the client sees a clean
                    # mid-request EOF, exactly like a killed process.
                    return
                if fault.kind == "slow":
                    time.sleep(fault.delay)
            if kind == "ping":
                if not _reply(session, ("pong",), fault):
                    return
                continue
            if kind == "register_fn":
                try:
                    if len(message) != 3:
                        raise SchemaViolationError("malformed register_fn frame")
                    _, digest, fn_bytes = message
                    if not isinstance(digest, str) or not isinstance(
                        fn_bytes, bytes
                    ):
                        raise SchemaViolationError("malformed register_fn frame")
                    if fault is None or fault.kind != "lose_publish":
                        fn_store.put(digest, fn_bytes)
                    reply: tuple[Any, ...] = ("ok", None)
                except Exception as exc:  # noqa: BLE001 - shipped back
                    reply = _task_error_reply(exc)
                if not _reply(session, reply, fault):
                    return
                served += 1
                continue
            if kind == "publish_inputs":
                try:
                    if len(message) != 6:
                        raise SchemaViolationError(
                            "malformed publish_inputs frame"
                        )
                    _, digest, shape, dtype_str, codec, data = message
                    array = decode_array_payload(
                        codec, data, tuple(shape), dtype_str
                    )
                    # The digest is the content address: verifying it
                    # here means a cached matrix can never disagree with
                    # the digest map frames reference it by.
                    if _content_digest(array) != digest:
                        raise SchemaViolationError(
                            f"publish_inputs digest mismatch for "
                            f"{str(digest)[:12]}…"
                        )
                    if fault is None or fault.kind != "lose_publish":
                        input_store.put(digest, array)
                    reply = ("ok", None)
                except Exception as exc:  # noqa: BLE001 - shipped back
                    reply = _task_error_reply(exc)
                if not _reply(session, reply, fault):
                    return
                served += 1
                continue
            if kind == "release_inputs":
                if len(message) == 2 and isinstance(message[1], str):
                    input_store.release(message[1])
                if not _reply(session, ("ok", None), fault):
                    return
                served += 1
                continue
            if kind != "map":
                session.send(
                    ("err", ValueError(f"unknown frame kind {kind!r}"), "")
                )
                continue
            if not (
                3 <= len(message) <= 4
                and isinstance(message[1], str)
                and isinstance(message[2], list)
            ):
                session.send(
                    ("err", SchemaViolationError("malformed map frame"), "")
                )
                continue
            # Tracing clients append a span-context id as an optional
            # fourth element; both frame shapes are accepted.
            _, fn_digest, items = message[:3]
            ctx = message[3] if len(message) > 3 else None
            fn_bytes = fn_store.get(fn_digest)
            if fn_bytes is None:
                # Tell the client to register (e.g. this worker
                # restarted, or its bounded cache evicted the callable)
                # instead of failing the chunk.
                if not _reply(session, ("need_fn", fn_digest), fault):
                    return
                continue
            try:
                fn = decode_value(fn_bytes)
            except ConnectionError as exc:
                # Undecodable despite a verified digest: a registry
                # asymmetry between client and worker (e.g. a function
                # registered only client-side).  A task error, not a
                # transport one — the client surfaces it.
                session.send(_task_error_reply(exc))
                continue
            handle = getattr(fn, "shared_input", None)
            shared = None
            if isinstance(handle, PublishedInput) and not handle.bound:
                cached = input_store.get(handle.digest)
                if cached is None:
                    # Tell the client to publish (e.g. this worker
                    # restarted and lost its cache) instead of failing
                    # the chunk.
                    if not _reply(session, ("need", handle.digest), fault):
                        return
                    continue
                shared = (
                    input_store.shared_handle(handle.digest)
                    if pool is not None
                    else None
                )
                if shared is not None:
                    handle.bind_shared(shared)
                else:
                    handle.bind(cached)
            if request_delay > 0.0:
                time.sleep(request_delay)
            closing = False
            try:
                with tracer.span(
                    "exec_chunk", track="worker", items=len(items), ctx=ctx
                ):
                    payload = _run_chunk(fn, items, pool)
                closing = not _reply(session, ("ok", payload), fault)
            except Exception as exc:  # noqa: BLE001 - shipped to the client
                session.send(_task_error_reply(exc))
            finally:
                if shared is not None:
                    input_store.done_with_shared(handle.digest)
            if closing:
                return
            served += 1
    finally:
        conn.close()


def serve(
    host: str = "127.0.0.1",
    port: int = 0,
    processes: int = 0,
    stop_event: threading.Event | None = None,
    ready_callback: Callable[[tuple[str, int]], None] | None = None,
    max_requests_per_connection: int | None = None,
    request_delay: float = 0.0,
    max_cached_inputs: int = 32,
    max_cached_fns: int = 64,
    fault_injector: "FaultInjector | None" = None,
    tracer: "Tracer | NullTracer" = NULL_TRACER,
    secret: "bytes | str | None" = None,
    ssl_context: "ssl.SSLContext | None" = None,
    registry: "MetricsRegistry | None" = None,
) -> None:
    """Accept connections and execute task frames until ``stop_event`` is set.

    ``port=0`` binds an OS-assigned port; ``ready_callback`` receives the
    actual ``(host, port)`` once listening — how in-process loopback
    workers discover their address.  ``processes > 0`` fans each chunk
    out over a local process pool.  ``request_delay`` injects that many
    seconds of latency before each map frame (a synthetic slow host).
    ``fault_injector`` arms the loop with a deterministic
    :class:`~repro.exec.faults.FaultPlan` schedule: it is consulted on
    every accepted connection (any ``accept``-scope fault closes the
    connection immediately — the observable shape of a refused or reset
    connection injected from inside a listening process) and on every
    received frame; the loop releases any hung connections when it
    exits.  Accept-scope faults fire *before* the handshake — a refused
    connection refuses everyone equally — while frame faults mangle
    authenticated traffic **after** the MAC is computed, so chaos cells
    exercise the client's verification path.

    ``secret`` is this worker's shared authentication secret
    (:func:`~repro.exec.wire.resolve_secret` semantics: explicit value,
    else ``REPRO_WIRE_SECRET``, else the development secret).
    ``ssl_context`` (a ``PROTOCOL_TLS_SERVER`` context) additionally
    wraps every accepted connection in TLS.  ``registry`` receives the
    worker-side handshake / rejected-frame counters.

    Published fixed inputs live in a digest-keyed store scoped to this
    serve call: shared by all its connections, LRU-bounded at
    ``max_cached_inputs`` distinct matrices (clients refill evicted
    digests via the ``("need", digest)`` reply), mirrored into
    shared-memory segments for the local process pool when
    ``processes > 0``, and released when the loop returns.  Registered
    task callables live in a twin store (``max_cached_fns``, healed via
    ``("need_fn", digest)``), kept as verified encoded bytes and decoded
    fresh per map frame.

    ``tracer`` records a ``worker``-track span per executed chunk,
    tagged with the span-context id the client's map frame carried (if
    any) — for in-process loopback workers this is typically the
    *client's* tracer, so both sides land in one timeline.
    """
    from concurrent.futures import ProcessPoolExecutor

    pool = ProcessPoolExecutor(max_workers=processes) if processes > 0 else None
    input_store = _InputStore(max_cached_inputs)
    fn_store = _FnStore(max_cached_fns)
    server = socket.create_server((host, port))
    server.settimeout(0.1)
    threads: list[threading.Thread] = []
    try:
        if ready_callback is not None:
            ready_callback(server.getsockname()[:2])
        while stop_event is None or not stop_event.is_set():
            # A long-lived worker sees many short connections; drop the
            # handles of finished handlers so the list stays bounded.
            threads = [thread for thread in threads if thread.is_alive()]
            try:
                conn, _addr = server.accept()
            except socket.timeout:
                continue
            if fault_injector is not None:
                accept_fault = fault_injector.next_fault("accept")
                if accept_fault is not None:
                    # Whatever the kind, an accept-scope fault denies
                    # the client this connection ("refuse" in plans).
                    conn.close()
                    continue
            thread = threading.Thread(
                target=_handle_connection,
                args=(
                    conn,
                    pool,
                    max_requests_per_connection,
                    input_store,
                    fn_store,
                    request_delay,
                    fault_injector,
                    tracer,
                    secret,
                    ssl_context,
                    registry,
                ),
                daemon=True,
            )
            thread.start()
            threads.append(thread)
    finally:
        server.close()
        if fault_injector is not None:
            # Release connections blocked in the sticky hung state so
            # their handler threads can exit.
            fault_injector.stop()
        for thread in threads:
            thread.join(timeout=1.0)
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        input_store.close()


def main(argv: list[str] | None = None) -> None:
    """CLI entry point: parse flags, announce the bound address, serve."""
    parser = argparse.ArgumentParser(
        description="Serve repro.exec tasks to DistributedExecutor clients."
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port",
        type=int,
        default=9123,
        help="TCP port to listen on (0 = OS-assigned; the actual port is "
        "printed once listening)",
    )
    parser.add_argument(
        "--processes",
        type=int,
        default=0,
        help="size of the local process pool shared by all connections "
        "(0 = run tasks inline in each connection's thread)",
    )
    parser.add_argument(
        "--max-cached-inputs",
        type=int,
        default=32,
        help="LRU bound on distinct published input matrices kept cached "
        "(evicted digests are transparently republished by clients)",
    )
    parser.add_argument(
        "--secret-file",
        metavar="FILE",
        default=None,
        help="file holding the shared authentication secret (whitespace-"
        "stripped).  Without it the secret comes from the "
        "REPRO_WIRE_SECRET environment variable, falling back to the "
        "well-known development secret (loopback testing only).",
    )
    parser.add_argument(
        "--tls-cert",
        metavar="PEM",
        default=None,
        help="serve TLS with this certificate chain (requires --tls-key)",
    )
    parser.add_argument(
        "--tls-key",
        metavar="PEM",
        default=None,
        help="private key for --tls-cert",
    )
    parser.add_argument(
        "--fault-plan",
        metavar="FILE",
        default=None,
        help="arm the serve loop with a deterministic fault schedule: a "
        "JSON file written by FaultPlan.to_json() (chaos testing; see "
        "docs/robustness.md)",
    )
    parser.add_argument(
        "--fault-site",
        default="worker-0",
        help="which site's schedule of --fault-plan this worker plays "
        "(default: worker-0)",
    )
    parser.add_argument(
        "--log-level",
        default="warning",
        choices=("debug", "info", "warning", "error", "critical"),
        help="stdlib logging threshold for worker diagnostics, emitted "
        "on stderr (default: warning).  The port-announce line always "
        "goes to stdout regardless — scripts parse it as the readiness "
        "signal.",
    )
    args = parser.parse_args(argv)

    logging.basicConfig(
        level=getattr(logging, args.log_level.upper()),
        format="%(asctime)s %(levelname)s %(name)s: %(message)s",
    )

    secret: "bytes | None" = None
    if args.secret_file is not None:
        with open(args.secret_file, "rb") as handle:
            secret = handle.read().strip()
        if not secret:
            parser.error(f"--secret-file {args.secret_file} is empty")

    ssl_context = None
    if (args.tls_cert is None) != (args.tls_key is None):
        parser.error("--tls-cert and --tls-key must be given together")
    if args.tls_cert is not None:
        import ssl as _ssl

        ssl_context = _ssl.SSLContext(_ssl.PROTOCOL_TLS_SERVER)
        ssl_context.load_cert_chain(args.tls_cert, args.tls_key)

    injector = None
    if args.fault_plan is not None:
        with open(args.fault_plan, encoding="utf-8") as handle:
            plan = FaultPlan.from_json(handle.read())
        injector = plan.injector(args.fault_site)
        logger.info(
            "armed fault plan %s (site %s)", args.fault_plan, args.fault_site
        )

    def announce(bound: tuple[str, int]) -> None:
        # The one deliberate print: with --port 0 this line is the only
        # way to learn the OS-assigned port, and scripts treat it as the
        # readiness signal — its exact shape on *stdout* is API
        # (logging goes to stderr and is reconfigurable, this is not).
        print(f"repro.exec worker listening on {bound[0]}:{bound[1]}", flush=True)
        logger.info(
            "serving on %s:%s (processes=%d, max_cached_inputs=%d, tls=%s)",
            bound[0],
            bound[1],
            args.processes,
            args.max_cached_inputs,
            "on" if ssl_context is not None else "off",
        )

    serve(
        args.host,
        args.port,
        processes=args.processes,
        ready_callback=announce,
        max_cached_inputs=args.max_cached_inputs,
        fault_injector=injector,
        secret=secret,
        ssl_context=ssl_context,
    )


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    try:
        # ``python -m repro.exec.worker`` executes this file as
        # ``__main__`` while the frames it receives reference
        # ``repro.exec.worker.PublishedInput`` — two distinct class
        # objects unless we delegate to the canonical module.
        from repro.exec.worker import main as _canonical_main
    except ImportError:
        _canonical_main = main
    _canonical_main()
