"""The distributed worker: a serve loop speaking the task-frame protocol.

One worker process serves one or more client connections; each connection
carries a sequence of length-prefixed pickle frames:

* ``("ping",)`` → ``("pong",)`` — liveness probe;
* ``("map", fn, items)`` → ``("ok", [fn(x) for x in items])`` on success
  or ``("err", exception, traceback_text)`` if a task raised — the
  client re-raises task errors, exactly like a local executor would;
* closing the connection ends the session.

Frames are ``8-byte big-endian length || pickle``.  The payload is an
arbitrary pickled callable, which the worker *executes* — run workers
only on trusted networks for trusted clients, exactly like
``multiprocessing`` workers (this is a compute-fabric protocol, not a
public service).

Run a worker from the command line::

    python -m repro.exec.worker --host 0.0.0.0 --port 9123 --processes 4

``--processes k`` executes tasks through one local process pool of ``k``
workers shared by every connection, so one remote host contributes up to
``k`` cores in total; the default runs tasks inline in each connection's
serving thread.
:func:`serve` is also importable directly, which is how the in-process
:class:`~repro.exec.distributed.LoopbackWorker` used by the test-suite
hosts the same loop on a background thread.
"""

from __future__ import annotations

import argparse
import pickle
import socket
import struct
import threading
import traceback
from typing import Any, Callable

__all__ = ["send_frame", "recv_frame", "serve", "main"]

_LENGTH = struct.Struct(">Q")

#: Refuse frames beyond this size (a corrupt length prefix would
#: otherwise ask us to allocate petabytes).
MAX_FRAME_BYTES = 1 << 32


def send_frame(sock: socket.socket, obj: Any) -> None:
    """Pickle ``obj`` and write it as one length-prefixed frame."""
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_LENGTH.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, n_bytes: int) -> bytes:
    chunks = []
    remaining = n_bytes
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError("peer closed the connection mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Any:
    """Read one length-prefixed frame; raise ``ConnectionError`` on EOF."""
    header = sock.recv(_LENGTH.size)
    if not header:
        raise ConnectionError("peer closed the connection")
    if len(header) < _LENGTH.size:
        header += _recv_exact(sock, _LENGTH.size - len(header))
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ConnectionError(f"frame of {length} bytes exceeds protocol limit")
    return pickle.loads(_recv_exact(sock, length))


def _run_chunk(fn: Callable[[Any], Any], items: list[Any], pool) -> list[Any]:
    if pool is None:
        return [fn(item) for item in items]
    return list(pool.map(fn, items))


def _handle_connection(
    conn: socket.socket, pool, max_requests: int | None
) -> None:
    """Serve one client until it disconnects (or ``max_requests`` frames).

    ``max_requests`` exists for fault-injection in tests: a worker that
    hangs up after N map frames exercises the client's mid-batch
    redistribution path deterministically.
    """
    served = 0
    try:
        while max_requests is None or served < max_requests:
            try:
                message = recv_frame(conn)
            except ConnectionError:
                return
            kind = message[0]
            if kind == "ping":
                send_frame(conn, ("pong",))
                continue
            if kind != "map":
                send_frame(
                    conn, ("err", ValueError(f"unknown frame kind {kind!r}"), "")
                )
                continue
            _, fn, items = message
            try:
                send_frame(conn, ("ok", _run_chunk(fn, items, pool)))
            except Exception as exc:  # noqa: BLE001 - shipped to the client
                send_frame(conn, ("err", exc, traceback.format_exc()))
            served += 1
    finally:
        conn.close()


def serve(
    host: str = "127.0.0.1",
    port: int = 0,
    processes: int = 0,
    stop_event: threading.Event | None = None,
    ready_callback: Callable[[tuple[str, int]], None] | None = None,
    max_requests_per_connection: int | None = None,
) -> None:
    """Accept connections and execute task frames until ``stop_event`` is set.

    ``port=0`` binds an OS-assigned port; ``ready_callback`` receives the
    actual ``(host, port)`` once listening — how in-process loopback
    workers discover their address.  ``processes > 0`` fans each chunk
    out over a local process pool.
    """
    from concurrent.futures import ProcessPoolExecutor

    pool = ProcessPoolExecutor(max_workers=processes) if processes > 0 else None
    server = socket.create_server((host, port))
    server.settimeout(0.1)
    threads: list[threading.Thread] = []
    try:
        if ready_callback is not None:
            ready_callback(server.getsockname()[:2])
        while stop_event is None or not stop_event.is_set():
            # A long-lived worker sees many short connections; drop the
            # handles of finished handlers so the list stays bounded.
            threads = [thread for thread in threads if thread.is_alive()]
            try:
                conn, _addr = server.accept()
            except socket.timeout:
                continue
            thread = threading.Thread(
                target=_handle_connection,
                args=(conn, pool, max_requests_per_connection),
                daemon=True,
            )
            thread.start()
            threads.append(thread)
    finally:
        server.close()
        for thread in threads:
            thread.join(timeout=1.0)
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        description="Serve repro.exec tasks to DistributedExecutor clients."
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=9123)
    parser.add_argument(
        "--processes",
        type=int,
        default=0,
        help="size of the local process pool shared by all connections "
        "(0 = run tasks inline in each connection's thread)",
    )
    args = parser.parse_args(argv)
    print(f"repro.exec worker listening on {args.host}:{args.port}")
    serve(args.host, args.port, processes=args.processes)


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    main()
