"""``DistributedExecutor`` — the ``Executor.map`` contract over sockets.

The third rung of the executor ladder: :class:`~repro.core.engine
.SerialExecutor` (one core), :class:`~repro.exec.pool.WorkerPool` (one
machine, warm), and this — many machines, each running a
:mod:`repro.exec.worker` serve loop.  Because the engine seeds batch
trial ``t`` purely from ``SeedSequence(seed).spawn(trials)[t]``, moving a
trial to another host changes *nothing* about its randomness: results
are bit-identical to the serial backend no matter how tasks land on
workers.

Dispatch splits the item list into contiguous chunks and round-robins
them over the connected workers, one feeder thread per connection so
slow and fast hosts overlap; a worker that disconnects mid-batch has its
unfinished chunks redistributed to the surviving workers, and when every
worker is gone the remainder runs locally (with a warning) — a batch
never fails because the fleet shrank.  Task exceptions, by contrast, are
shipped back and re-raised exactly like a local executor would.

Workers for tests (or single-machine smoke runs) can live in-process:
:class:`LoopbackWorker` hosts the same serve loop on a background thread
bound to ``127.0.0.1``.
"""

from __future__ import annotations

import socket
import threading
import warnings
from collections import deque
from typing import Any, Callable, Iterable

from ..core.engine import Executor
from .worker import recv_frame, send_frame, serve

__all__ = ["DistributedExecutor", "LoopbackWorker"]


def _parse_address(address: "str | tuple[str, int]") -> tuple[str, int]:
    if isinstance(address, tuple):
        host, port = address
        return str(host), int(port)
    host, sep, port = address.rpartition(":")
    if not sep or not host or not port.isdigit():
        raise ValueError(
            f"worker address must be 'host:port' or (host, port), got {address!r}"
        )
    if host.startswith("[") and host.endswith("]"):
        host = host[1:-1]  # "[::1]:9123" bracket form
    elif ":" in host:
        raise ValueError(
            f"IPv6 worker addresses need brackets ('[::1]:9123'), got {address!r}"
        )
    return host, int(port)


class _WorkerLink:
    """One client connection, lazily (re)connected per map call."""

    def __init__(
        self,
        address: tuple[str, int],
        connect_timeout: float,
        task_timeout: float | None = None,
    ):
        self.address = address
        self.connect_timeout = connect_timeout
        self.task_timeout = task_timeout
        self.sock: socket.socket | None = None

    def ensure_connected(self) -> bool:
        if self.sock is not None:
            return True
        try:
            sock = socket.create_connection(
                self.address, timeout=self.connect_timeout
            )
            # No task_timeout means frames block until completion; TCP
            # keepalive still surfaces a silently-partitioned peer
            # eventually instead of hanging the batch forever.
            sock.settimeout(self.task_timeout)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_KEEPALIVE, 1)
            self.sock = sock
            return True
        except OSError:
            return False

    def request(self, payload: Any) -> Any:
        """One round-trip; raises ``ConnectionError`` on transport failure."""
        assert self.sock is not None
        try:
            send_frame(self.sock, payload)
            return recv_frame(self.sock)
        except (OSError, EOFError) as exc:
            raise ConnectionError(str(exc)) from exc

    def drop(self) -> None:
        sock, self.sock = self.sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass


class DistributedExecutor(Executor):
    """Round-robin tasks over remote ``repro.exec.worker`` serve loops.

    Parameters
    ----------
    addresses:
        Worker endpoints, as ``"host:port"`` strings or ``(host, port)``
        tuples.  Each map call opens its own connections (so overlapping
        ``submit_batch`` batches run concurrently against the fleet —
        workers serve one handler thread per connection) and a worker
        that was unreachable or failed mid-call is simply retried by the
        next call.
    chunksize:
        Items per task frame; defaults to
        ``ceil(len(items) / (4 * n_workers))`` so each worker sees ~4
        chunks and stragglers rebalance.
    connect_timeout:
        Seconds to wait when (re)establishing a worker connection.
    task_timeout:
        Seconds a worker may take to answer one chunk before the link is
        treated as failed and the chunk redistributed.  ``None`` (the
        default) waits indefinitely — protocols have unbounded runtimes —
        relying on TCP keepalive to surface silent partitions; set it
        when chunk runtimes are predictable and hung workers must not
        stall a batch.
    local_fallback:
        Run chunks locally when no worker can take them (all
        disconnected / unreachable).  ``False`` raises instead — for
        deployments where silent local execution would hide a fleet
        outage.
    """

    name = "distributed"

    def __init__(
        self,
        addresses: Iterable["str | tuple[str, int]"],
        chunksize: int | None = None,
        connect_timeout: float = 5.0,
        task_timeout: float | None = None,
        local_fallback: bool = True,
    ):
        parsed = [_parse_address(address) for address in addresses]
        if not parsed:
            raise ValueError("DistributedExecutor needs at least one worker address")
        if chunksize is not None and chunksize < 1:
            raise ValueError("chunksize must be >= 1")
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError("task_timeout must be positive")
        self._addresses = parsed
        self.connect_timeout = connect_timeout
        self.task_timeout = task_timeout
        self.chunksize = chunksize
        self.local_fallback = local_fallback

    @property
    def addresses(self) -> list[tuple[str, int]]:
        return list(self._addresses)

    def _fresh_links(self) -> list[_WorkerLink]:
        """Private connections for one conversation.

        Each map (or ping) uses its own sockets, so concurrent calls —
        overlapping ``submit_batch`` batches — never interleave frames;
        workers accept one handler thread per connection.
        """
        return [
            _WorkerLink(address, self.connect_timeout, self.task_timeout)
            for address in self._addresses
        ]

    # -- liveness -------------------------------------------------------
    def ping(self) -> list[bool]:
        """Probe every worker; True per worker that answered."""
        alive = []
        for link in self._fresh_links():
            ok = False
            if link.ensure_connected():
                try:
                    ok = link.request(("ping",))[0] == "pong"
                except ConnectionError:
                    pass
                finally:
                    link.drop()
            alive.append(ok)
        return alive

    # -- Executor contract ----------------------------------------------
    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list[Any]:
        items = list(items)
        if not items:
            return []
        probe_exc = self._pickle_probe(fn, items)
        if probe_exc is not None:
            return self._unpicklable_fallback(
                fn, items, probe_exc, action="running locally"
            )
        links = self._fresh_links()
        try:
            return self._map_over_links(fn, items, links)
        finally:
            for link in links:
                link.drop()

    def _map_over_links(
        self, fn: Callable[[Any], Any], items: list[Any], links: list[_WorkerLink]
    ) -> list[Any]:
        chunksize = self.chunksize or self._default_chunksize(
            len(items), len(links)
        )
        pending: deque[tuple[int, list[Any]]] = deque(
            (start, items[start : start + chunksize])
            for start in range(0, len(items), chunksize)
        )
        results: list[Any] = [None] * len(items)
        lock = threading.Lock()
        task_error: list[BaseException] = []
        dead: set[int] = set()

        def feed(index: int, link: _WorkerLink) -> None:
            """Pull chunks and ship them to one worker until it fails."""
            while True:
                with lock:
                    if task_error or not pending:
                        return
                    start, chunk = pending.popleft()
                try:
                    reply = link.request(("map", fn, chunk))
                    kind = reply[0]
                    if kind == "err":
                        with lock:
                            task_error.append(reply[1])
                        return
                    if kind != "ok":
                        raise ConnectionError(f"unknown reply kind {kind!r}")
                    payload = list(reply[1])
                    if len(payload) != len(chunk):
                        raise ConnectionError(
                            f"short reply: {len(payload)} results for "
                            f"{len(chunk)} tasks"
                        )
                except Exception:  # noqa: BLE001 - any transport/protocol
                    # failure (dropped socket, corrupt pickle, malformed
                    # reply): the chunk's fate is unknown, but tasks are
                    # pure, so rerunning it elsewhere is safe.  The link
                    # sits out the rest of this map call (it may reconnect
                    # on the next one).
                    link.drop()
                    with lock:
                        dead.add(index)
                        pending.appendleft((start, chunk))
                    return
                with lock:
                    results[start : start + len(chunk)] = payload

        # Dispatch rounds.  Feeder threads exit when the queue looks
        # empty, so a chunk re-queued by a worker dying *after* the
        # survivors already left would strand without the outer loop:
        # each round re-dispatches leftovers over the still-live links.
        # Every round either completes a chunk or kills a link, so the
        # loop terminates.
        while pending and not task_error:
            threads = []
            for index, link in enumerate(links):
                if index not in dead and link.ensure_connected():
                    thread = threading.Thread(
                        target=feed, args=(index, link), daemon=True
                    )
                    thread.start()
                    threads.append(thread)
            if not threads:
                break  # nobody reachable: leftovers go to the fallback
            for thread in threads:
                thread.join()

        if task_error:
            raise task_error[0]
        if pending:
            # Every worker is gone (or none were reachable to begin with).
            if not self.local_fallback:
                raise ConnectionError(
                    f"{len(pending)} task chunks undelivered and no "
                    "distributed worker is reachable"
                )
            warnings.warn(
                f"no distributed worker reachable; running {len(pending)} "
                "remaining chunks locally",
                RuntimeWarning,
                stacklevel=2,
            )
            while pending:
                start, chunk = pending.popleft()
                results[start : start + len(chunk)] = [fn(item) for item in chunk]
        return results

    def close(self) -> None:
        """Nothing to release: connections are per-call and already closed.

        Kept so the executor can be used as a context manager uniformly
        with :class:`~repro.exec.pool.WorkerPool`.
        """

    def __enter__(self) -> "DistributedExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class LoopbackWorker:
    """An in-process worker thread serving the distributed protocol.

    Hosts :func:`repro.exec.worker.serve` on a daemon thread bound to an
    OS-assigned loopback port — the distributed stack end-to-end (frames,
    sockets, redistribution) with no extra processes, which is what the
    test-suite and single-machine smoke runs want.

    ``max_requests_per_connection`` makes the worker hang up after that
    many map frames on each connection — deterministic fault injection
    for the client's mid-batch failover path.
    """

    def __init__(self, max_requests_per_connection: int | None = None):
        self._stop = threading.Event()
        ready = threading.Event()
        address: list[tuple[str, int]] = []

        def on_ready(bound: tuple[str, int]) -> None:
            address.append(bound)
            ready.set()

        self._thread = threading.Thread(
            target=serve,
            kwargs=dict(
                host="127.0.0.1",
                port=0,
                stop_event=self._stop,
                ready_callback=on_ready,
                max_requests_per_connection=max_requests_per_connection,
            ),
            daemon=True,
        )
        self._thread.start()
        if not ready.wait(timeout=5.0):  # pragma: no cover - startup failure
            raise RuntimeError("loopback worker failed to start")
        self.address: tuple[str, int] = address[0]

    @property
    def endpoint(self) -> str:
        host, port = self.address
        return f"{host}:{port}"

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "LoopbackWorker":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
