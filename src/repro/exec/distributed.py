"""``DistributedExecutor`` — the ``Executor.map`` contract over sockets.

The third rung of the executor ladder: :class:`~repro.core.engine
.SerialExecutor` (one core), :class:`~repro.exec.pool.WorkerPool` (one
machine, warm), and this — many machines, each running a
:mod:`repro.exec.worker` serve loop.  Because the engine seeds batch
trial ``t`` purely from ``SeedSequence(seed).spawn(trials)[t]``, moving a
trial to another host changes *nothing* about its randomness: results
are bit-identical to the serial backend no matter how tasks land on
workers.

Every connection is an authenticated
:class:`~repro.exec.wire.WireSession`: a shared-secret HMAC handshake at
connect (optionally under TLS), then schema-encoded frames — **never
pickle** — each carrying a MAC over the session key and a sequence
number, so a tampered or replayed frame (including a published-input
matrix) raises a typed error instead of being computed on.  Task
callables do not travel either: the executor registers the encoded
callable once per worker under its content digest (``register_fn``) and
map frames reference the digest; a worker that restarted answers
``("need_fn", digest)`` and is transparently re-registered.

Dispatch splits the item list into contiguous chunks and deals them over
the connected workers through the shared work-stealing
:class:`~repro.exec.stealing.ChunkScheduler` — one feeder thread per
connection, each keeping one chunk in flight and stealing queued chunks
from slower hosts once its own share is done, so a heterogeneous fleet
finishes when the work runs out rather than when the slowest host does
(``scheduling="static"`` restores the pure round-robin plan).  A worker
that disconnects mid-batch has its unfinished chunks redistributed to
the surviving workers, and when every worker is gone the remainder runs
locally (with a loud :class:`~repro.exec.health.FleetDegradedWarning`) —
a batch never fails because the fleet shrank.  Task exceptions, by
contrast, are shipped back and re-raised exactly like a local executor
would.

The failure model is tested, not aspirational (``docs/robustness.md``):
a per-map **heartbeat monitor** probes every worker on fresh
connections and drives the ``healthy → suspect → dead`` state machine
of :class:`~repro.exec.health.HealthBoard`, so a *hung* worker — one
whose accept queue still completes TCP handshakes while the process
answers nothing — is detected within the suspect window instead of
stalling a batch until its socket dies; each chunk carries a finite
deadline (``task_timeout``, default 300 s) and a timed-out chunk is
requeued to the survivors; failed lanes are retried a bounded number of
times with exponential backoff whose jitter is deterministic
(seed-derived — replayable schedules, no retry stampede); and every
handled failure lands in :class:`~repro.exec.health.ErrorTelemetry`
(``executor.telemetry``) rather than an ``except: pass``.  Under any
fault schedule the deterministic fault-injection harness
(:mod:`repro.exec.faults`) can produce, results are bit-identical to
:class:`~repro.core.engine.SerialExecutor` or the failure is a loud
typed error — never silent partial output.

Large **fixed input matrices** are not re-encoded into every map frame:
the executor publishes them once per worker (``publish_inputs`` frames,
keyed by content digest, compressed with the best codec the session
negotiated — GF(2) matrices ride bit-packed at an eighth of the raw
bytes) and workers cache them across connections and batches —
consecutive batches over the same inputs transmit the matrix exactly
once per worker.  A worker that restarted (and lost its cache) answers
``("need", digest)`` and is transparently refilled.

Workers for tests (or single-machine smoke runs) can live in-process:
:class:`LoopbackWorker` hosts the same serve loop on a background thread
bound to ``127.0.0.1``.
"""

from __future__ import annotations

import socket
import threading
import time
import warnings
from typing import TYPE_CHECKING, Any, Callable, Iterable

import numpy as np

from ..core.engine import Executor, _DigestCache
from ..obs.metrics import MetricsRegistry
from ..obs.recorder import FlightRecorder
from ..obs.trace import NULL_TRACER, NullTracer, Tracer
from .health import (
    DEAD,
    ErrorTelemetry,
    FleetDegradedWarning,
    HealthBoard,
    RetryPolicy,
    WorkerTimeoutError,
)
from .stealing import ChunkScheduler
from .wire import (
    AuthenticationError,
    CorruptFrameError,
    FrameAuthenticationError,
    UnencodableError,
    WireProtocolError,
    WireSession,
    encode_array_payload,
    encode_value,
    function_digest,
    register_wire_function,
)
from .worker import PublishedInput, serve

if TYPE_CHECKING:  # pragma: no cover - typing only
    import ssl

    from .faults import FaultInjector

__all__ = ["DistributedExecutor", "LoopbackWorker"]


@register_wire_function
def _shout(text: str) -> str:
    """The doc-example workload (registered so it travels by name)."""
    return text.upper()


def _failure_category(exc: BaseException) -> str:
    """The telemetry category a handled lane failure is recorded under."""
    if isinstance(exc, WorkerTimeoutError):
        return "timeout"
    if isinstance(exc, FrameAuthenticationError):
        return "auth"
    if isinstance(exc, CorruptFrameError):
        return "corrupt"
    if isinstance(exc, (ConnectionError, OSError, EOFError)):
        return "transport"
    return "protocol"


def _parse_address(address: "str | tuple[str, int]") -> tuple[str, int]:
    if isinstance(address, tuple):
        host, port = address
        return str(host), int(port)
    host, sep, port = address.rpartition(":")
    if not sep or not host or not port.isdigit():
        raise ValueError(
            f"worker address must be 'host:port' or (host, port), got {address!r}"
        )
    if host.startswith("[") and host.endswith("]"):
        host = host[1:-1]  # "[::1]:9123" bracket form
    elif ":" in host:
        raise ValueError(
            f"IPv6 worker addresses need brackets ('[::1]:9123'), got {address!r}"
        )
    return host, int(port)


class _WorkerLink:
    """One authenticated client connection, lazily (re)connected per map call.

    Connecting means: TCP connect, optional TLS wrap, then the
    :class:`~repro.exec.wire.WireSession` challenge–response handshake —
    a link either holds a fully authenticated session or no connection
    at all.  ``connect_retries`` extra attempts are made (spaced by the
    deterministic ``retry_policy`` backoff) before the link reports
    itself unreachable — except on :class:`~repro.exec.wire
    .AuthenticationError`, which no retry will heal (the secrets
    disagree) and which is reported immediately.  Every handled failure
    is recorded in ``telemetry`` under the link's worker address, and
    handshake outcomes are counted on ``registry``
    (``exec_handshakes_total{outcome=ok|auth|error}``).
    """

    def __init__(
        self,
        address: tuple[str, int],
        connect_timeout: float,
        task_timeout: float | None = None,
        lane: int = 0,
        telemetry: "ErrorTelemetry | None" = None,
        retry_policy: "RetryPolicy | None" = None,
        connect_retries: int = 0,
        secret: "bytes | str | None" = None,
        ssl_context: "ssl.SSLContext | None" = None,
        registry: "MetricsRegistry | None" = None,
    ):
        self.address = address
        self.connect_timeout = connect_timeout
        self.task_timeout = task_timeout
        self.lane = lane
        self.telemetry = telemetry
        self.retry_policy = retry_policy
        self.connect_retries = connect_retries
        self.secret = secret
        self.ssl_context = ssl_context
        self.registry = registry
        self.sock: socket.socket | None = None
        self.session: WireSession | None = None

    def _record(self, category: str) -> None:
        if self.telemetry is not None:
            self.telemetry.record(self.address, category)

    def _count_handshake(self, outcome: str) -> None:
        if self.registry is not None:
            self.registry.counter(
                "exec_handshakes_total", outcome=outcome
            ).inc()

    @property
    def codecs(self) -> tuple[str, ...]:
        """Array codecs the session negotiated (``("raw",)`` until connected)."""
        session = self.session
        return session.codecs if session is not None else ("raw",)

    def ensure_connected(self) -> bool:
        if self.session is not None:
            return True
        attempts = self.connect_retries + 1
        for attempt in range(attempts):
            sock: socket.socket | None = None
            try:
                sock = socket.create_connection(
                    self.address, timeout=self.connect_timeout
                )
                # task_timeout bounds every frame round-trip (the
                # per-chunk deadline); TCP keepalive additionally
                # surfaces a silently-partitioned peer when the caller
                # opted into task_timeout=None.
                sock.settimeout(self.task_timeout)
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_KEEPALIVE, 1)
                if self.ssl_context is not None:
                    sock = self.ssl_context.wrap_socket(
                        sock, server_hostname=self.address[0]
                    )
                session = WireSession.client(sock, self.secret)
            except AuthenticationError:
                # The worker refused our proof (or presented a bad one):
                # the secrets disagree, and no retry heals that.  Loud
                # and immediate — a misconfigured fleet must not look
                # like a flaky network.
                self._record("auth")
                self._count_handshake("auth")
                if sock is not None:
                    sock.close()
                return False
            except WireProtocolError:
                # Handshake failed for a non-auth reason (truncated or
                # malformed exchange — e.g. the peer is not speaking
                # this protocol version).
                self._record("connect")
                self._count_handshake("error")
                if sock is not None:
                    sock.close()
                if attempt + 1 < attempts and self.retry_policy is not None:
                    time.sleep(self.retry_policy.delay(attempt, lane=self.lane))
                continue
            except OSError:
                if sock is not None:
                    sock.close()
                self._record("connect")
                if attempt + 1 < attempts and self.retry_policy is not None:
                    time.sleep(self.retry_policy.delay(attempt, lane=self.lane))
                continue
            self.sock = sock
            self.session = session
            self._count_handshake("ok")
            return True
        return False

    def request(self, payload: Any) -> Any:
        """One round-trip; raises ``ConnectionError`` on transport failure.

        The error is typed by diagnosis: a frame that takes longer than
        ``task_timeout`` raises
        :class:`~repro.exec.health.WorkerTimeoutError`; a frame whose
        MAC does not verify raises
        :class:`~repro.exec.wire.FrameAuthenticationError`; a damaged
        frame raises another :class:`~repro.exec.wire.WireProtocolError`
        subclass; everything else surfaces as plain
        :class:`ConnectionError`.  All are ``ConnectionError``
        subclasses, so callers can handle transport failure uniformly
        and still tell the cases apart.
        """
        session = self.session
        if session is None:
            # The heartbeat monitor dropped this link concurrently (the
            # worker was declared dead mid-request).
            raise ConnectionError(f"link to {self.address} was dropped")
        try:
            return session.request(payload)
        except ConnectionError:
            raise  # already typed (includes the WireProtocolError family)
        except TimeoutError as exc:
            raise WorkerTimeoutError(
                f"worker {self.address[0]}:{self.address[1]} exceeded "
                f"task_timeout={self.task_timeout}s answering a frame"
            ) from exc
        except (OSError, EOFError) as exc:
            raise ConnectionError(str(exc)) from exc

    def drop(self) -> None:
        sock, self.sock = self.sock, None
        self.session = None
        if sock is not None:
            # shutdown() before close(): closing an fd does not wake a
            # thread blocked in recv() on it, shutdown() does — this is
            # what lets the heartbeat monitor unblock a feeder stuck on
            # a hung worker long before task_timeout.
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:  # repro-lint: disable=EXC03 ENOTCONN on an already-reset peer is the normal path
                pass
            try:
                sock.close()
            except OSError:
                # Nothing to salvage on a socket that will not even
                # close, but the failure is still counted.
                self._record("close")


class DistributedExecutor(Executor):
    """The ``Executor.map`` contract over remote worker serve loops.

    Parameters
    ----------
    addresses:
        Worker endpoints, as ``"host:port"`` strings or ``(host, port)``
        tuples.  Each map call opens its own connections (so overlapping
        ``submit_batch`` batches run concurrently against the fleet —
        workers serve one handler thread per connection) and a worker
        that was unreachable or failed mid-call is simply retried by the
        next call.
    secret:
        Shared authentication secret for the per-connection HMAC
        handshake and per-frame MACs (:func:`~repro.exec.wire
        .resolve_secret` semantics: this value, else the
        ``REPRO_WIRE_SECRET`` environment variable, else a well-known
        development secret suitable only for loopback testing).  Must
        match the workers' secret; a mismatch surfaces immediately as an
        ``"auth"`` telemetry entry and an unreachable worker, never as a
        hung batch.
    ssl_context:
        Optional ``PROTOCOL_TLS_CLIENT`` context; when given, every
        worker connection is TLS-wrapped before the handshake (the HMAC
        handshake authenticates both ends either way — TLS adds
        confidentiality and server-certificate pinning on networks that
        need them).
    chunksize:
        Items per task frame; defaults to
        ``ceil(len(items) / (8 * n_workers))`` under the stealing
        scheduler — small enough that a straggler's queue is worth
        stealing from — and ``ceil(len(items) / (4 * n_workers))`` under
        static scheduling, where chunks never migrate and per-frame
        overhead dominates.
    connect_timeout:
        Seconds to wait when (re)establishing a worker connection.
    task_timeout:
        Seconds a worker may take to answer one chunk before the link
        raises :class:`~repro.exec.health.WorkerTimeoutError` and the
        chunk is requeued to a surviving lane.  The default is a
        **finite** 300 seconds — a hung worker can no longer stall
        ``submit_batch`` forever; batches whose single chunks
        legitimately run longer should raise it.  ``None`` waits
        indefinitely, relying on TCP keepalive and the heartbeat
        monitor to surface dead and hung peers.
    heartbeat_interval:
        Seconds between liveness probes while a map call is in flight.
        The monitor pings every worker on a *fresh* connection (a hung
        serve loop still completes TCP handshakes, so probing the
        in-flight socket would prove nothing), records the outcome on
        :attr:`health`, and once a worker is declared dead forcibly
        drops its in-flight link — unblocking a feeder stuck waiting on
        a wedged process within
        ``dead_after * heartbeat_interval + probe timeout`` rather than
        after ``task_timeout``.  ``None`` disables the monitor.
    suspect_after / dead_after:
        Consecutive misses (heartbeat or chunk failures) before a
        worker is *suspect*, respectively *dead*, on :attr:`health`.
    connect_retries:
        Extra connection attempts per link before a worker counts as
        unreachable, spaced by the deterministic backoff below.  An
        authentication failure is never retried — wrong secrets do not
        heal.
    lane_retries:
        Times a failed lane is resurrected (reconnected and handed
        chunks again) within one map call before it stays dead.  A
        worker the heartbeat declared dead is never resurrected.
    backoff_base / backoff_cap / retry_seed:
        Retry backoff: attempt ``n`` waits
        ``min(cap, base * 2**n) * jitter`` seconds, with jitter drawn
        deterministically from ``retry_seed`` via the sanctioned
        :func:`~repro.core.randomness.expand_seed` helper
        (:class:`~repro.exec.health.RetryPolicy`) — retry schedules are
        replayable and never perturb results.
    local_fallback:
        Run chunks locally when no worker can take them (all
        disconnected / unreachable).  ``False`` raises instead — for
        deployments where silent local execution would hide a fleet
        outage.
    scheduling:
        ``"steal"`` (the default) lets a worker that finished its dealt
        share steal queued chunks from slower hosts — wall-clock is then
        bounded by the total work, not by the slowest host's share.
        ``"static"`` pins every chunk to the worker it was dealt to
        (pure round-robin; the baseline ``bench_exec_steal.py`` measures
        against).  Either way results are written back by chunk offset
        and trials are seeded per-spec, so outputs are bit-identical to
        :class:`~repro.core.engine.SerialExecutor`.
    share_inputs_min_bytes:
        Fixed input matrices at least this large are published to each
        worker once (content-digest keyed ``publish_inputs`` frame,
        compressed with the session-negotiated codec) and referenced by
        handle in every subsequent map frame, instead of being encoded
        into each chunk.  Workers cache published inputs across batches
        until :meth:`close` releases them.
    max_cached_inputs:
        LRU bound on *distinct* matrices the executor keeps pinned for
        publication — a long sweep whose grid varies the fixed inputs
        must not accumulate every matrix it ever published.  Evicting a
        digest also forgets its worker acks, so re-using evicted inputs
        later simply republishes them (workers bound their own caches
        the same way and answer ``("need", digest)`` after evicting —
        the protocol is self-healing in both directions).

    The executor plugs into the engine like any other backend — here
    against an in-process loopback worker.  Task callables travel by
    registry name plus state, never as code, so the workload must be a
    registered callable (engine trial runners and protocol classes
    already are; ad-hoc demo functions use
    :func:`~repro.exec.wire.register_wire_function`):

    >>> from repro.exec import DistributedExecutor, LoopbackWorker
    >>> from repro.exec.distributed import _shout
    >>> with LoopbackWorker() as worker:
    ...     with DistributedExecutor([worker.endpoint]) as executor:
    ...         executor.map(_shout, ["steal", "publish"])
    ['STEAL', 'PUBLISH']
    """

    name = "distributed"

    #: Documented finite default for :attr:`task_timeout` — a hung
    #: worker stalls one chunk for at most this long before the chunk
    #: is requeued elsewhere.
    DEFAULT_TASK_TIMEOUT = 300.0

    def __init__(
        self,
        addresses: Iterable["str | tuple[str, int]"],
        chunksize: int | None = None,
        connect_timeout: float = 5.0,
        task_timeout: float | None = DEFAULT_TASK_TIMEOUT,
        local_fallback: bool = True,
        scheduling: str = "steal",
        share_inputs_min_bytes: int = 1 << 16,
        max_cached_inputs: int = 32,
        heartbeat_interval: float | None = 5.0,
        suspect_after: int = 1,
        dead_after: int = 3,
        connect_retries: int = 1,
        lane_retries: int = 1,
        backoff_base: float = 0.05,
        backoff_cap: float = 1.0,
        retry_seed: int = 0,
        secret: "bytes | str | None" = None,
        ssl_context: "ssl.SSLContext | None" = None,
        registry: "MetricsRegistry | None" = None,
        tracer: "Tracer | NullTracer" = NULL_TRACER,
        recorder: "FlightRecorder | None" = None,
    ):
        parsed = [_parse_address(address) for address in addresses]
        if not parsed:
            raise ValueError("DistributedExecutor needs at least one worker address")
        if chunksize is not None and chunksize < 1:
            raise ValueError("chunksize must be >= 1")
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError("task_timeout must be positive")
        if scheduling not in ("steal", "static"):
            raise ValueError("scheduling must be 'steal' or 'static'")
        if share_inputs_min_bytes < 1:
            raise ValueError("share_inputs_min_bytes must be >= 1")
        if max_cached_inputs < 1:
            raise ValueError("max_cached_inputs must be >= 1")
        if heartbeat_interval is not None and heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive (or None)")
        if connect_retries < 0:
            raise ValueError("connect_retries must be >= 0")
        if lane_retries < 0:
            raise ValueError("lane_retries must be >= 0")
        self._addresses = parsed
        self.connect_timeout = connect_timeout
        self.task_timeout = task_timeout
        self.chunksize = chunksize
        self.local_fallback = local_fallback
        self.scheduling = scheduling
        self.share_inputs_min_bytes = share_inputs_min_bytes
        self.max_cached_inputs = max_cached_inputs
        self.heartbeat_interval = heartbeat_interval
        self.connect_retries = connect_retries
        self.lane_retries = lane_retries
        self.secret = secret
        self.ssl_context = ssl_context
        #: Unified metrics home (shared when passed in, private
        #: otherwise); every counter below is a view into it.
        self.registry = registry if registry is not None else MetricsRegistry()
        #: Span tracer; :data:`~repro.obs.trace.NULL_TRACER` (free) by
        #: default.  A real tracer renders each map call as per-lane
        #: chunk spans plus steal/requeue instants and a heartbeat track.
        self.tracer = tracer
        #: Always-on bounded flight recorder: health transitions, lane
        #: deaths, and local-fallback degradations land here, dumped to
        #: ``REPRO_CHAOS_DIR`` by the conformance harness on failure.
        self.recorder = recorder if recorder is not None else FlightRecorder()
        #: Per-worker liveness state machine (healthy → suspect → dead),
        #: driven by heartbeat probes and per-chunk failures.
        self.health = HealthBoard(
            suspect_after=suspect_after,
            dead_after=dead_after,
            recorder=self.recorder,
        )
        #: Per-worker, per-category counters of every *handled* failure
        #: (connect, auth, transport, timeout, corrupt, heartbeat, ping,
        #: release, close, protocol) — nothing is silently swallowed.
        #: Served from :attr:`registry` as ``exec_errors_total``.
        self.telemetry = ErrorTelemetry(registry=self.registry)
        self._retry_policy = RetryPolicy(
            seed=retry_seed, base=backoff_base, cap=backoff_cap
        )
        #: Published-input bookkeeping: the matrices themselves (digest →
        #: array, LRU-bounded by ``max_cached_inputs``, for lazy
        #: per-worker publication and local fallback), and which workers
        #: acked which digests (address → digests).
        self._digest_cache = _DigestCache()
        self._inputs_by_digest: dict[str, np.ndarray] = {}
        self._acked: dict[tuple[str, int], set[str]] = {}
        #: Which workers hold which registered callables (address →
        #: function digests) — the ``register_fn`` twin of the
        #: published-input ack table, healed the same way by
        #: ``("need_fn", digest)`` replies.
        self._fn_acks: dict[tuple[str, int], set[str]] = {}
        #: digest → number of in-flight batches using it; pinned digests
        #: are exempt from LRU eviction (evicting a matrix a running map
        #: still references would fail that map on every lane).
        self._pinned: dict[str, int] = {}
        self._publish_lock = threading.Lock()
        #: One send-lock per worker address: concurrent map calls must
        #: not each ship the same matrix (or callable) to the same
        #: worker (the second sender waits, then sees the ack and
        #: skips).
        self._publish_send_locks: dict[tuple[str, int], threading.Lock] = {}

    @property
    def addresses(self) -> list[tuple[str, int]]:
        return list(self._addresses)

    # -- registry-backed counters ---------------------------------------
    # The original bare-int telemetry attributes, now served from the
    # unified registry so a run exports one metrics artifact.  Old
    # attribute paths keep working and keep their int semantics.

    @property
    def publish_frames_sent(self) -> int:
        """``publish_inputs`` frames actually sent (cumulative)."""
        return int(self.registry.total("exec_publish_frames_total"))

    @property
    def publish_bytes_sent(self) -> int:
        """Published-input payload bytes on the wire (cumulative, all
        codecs — the per-codec split lives in the registry as
        ``exec_publish_bytes_total{codec=...}``)."""
        return int(self.registry.total("exec_publish_bytes_total"))

    @property
    def last_map_steals(self) -> int:
        """Chunks acquired by stealing in the most recent map call."""
        return int(self.registry.gauge("exec_last_map_steals").value)

    @property
    def last_map_requeues(self) -> int:
        """Chunks requeued by failed lanes in the most recent map call."""
        return int(self.registry.gauge("exec_last_map_requeues").value)

    @property
    def degraded_maps(self) -> int:
        """Map calls that degraded to local execution (each also warns
        with :class:`~repro.exec.health.FleetDegradedWarning`)."""
        return int(self.registry.total("exec_degraded_maps_total"))

    def _fresh_links(self) -> list[_WorkerLink]:
        """Private connections for one conversation.

        Each map (or ping) uses its own sockets, so concurrent calls —
        overlapping ``submit_batch`` batches — never interleave frames;
        workers accept one handler thread per connection.
        """
        return [
            _WorkerLink(
                address,
                self.connect_timeout,
                self.task_timeout,
                lane=lane,
                telemetry=self.telemetry,
                retry_policy=self._retry_policy,
                connect_retries=self.connect_retries,
                secret=self.secret,
                ssl_context=self.ssl_context,
                registry=self.registry,
            )
            for lane, address in enumerate(self._addresses)
        ]

    # -- liveness -------------------------------------------------------
    def _probe(self, address: tuple[str, int], lane: int) -> bool:
        """One single-attempt liveness probe on a fresh connection.

        The probe's frame deadline is the heartbeat interval (falling
        back to ``connect_timeout``), so a hung worker — which happily
        completes the TCP handshake — costs one bounded timeout, not a
        stalled monitor.
        """
        deadline = self.heartbeat_interval or self.connect_timeout
        probe = _WorkerLink(
            address,
            self.connect_timeout,
            task_timeout=deadline,
            lane=lane,
            telemetry=self.telemetry,
            secret=self.secret,
            ssl_context=self.ssl_context,
        )
        if not probe.ensure_connected():
            return False
        try:
            return probe.request(("ping",))[0] == "pong"
        except ConnectionError:
            return False
        finally:
            probe.drop()

    def ping(self) -> list[bool]:
        """Probe every worker; True per worker that answered.

        Each probe's outcome also lands on :attr:`health` (an explicit
        ping is a liveness observation like any heartbeat) and failures
        are counted in :attr:`telemetry` under ``"ping"``.
        """
        alive = []
        for link in self._fresh_links():
            ok = False
            if link.ensure_connected():
                try:
                    ok = link.request(("ping",))[0] == "pong"
                except ConnectionError:
                    self.telemetry.record(link.address, "ping")
                finally:
                    link.drop()
            if ok:
                self.health.record_ok(link.address)
            else:
                self.health.record_miss(link.address, reason="ping")
            alive.append(ok)
        return alive

    # -- shared fixed-input publication ---------------------------------
    def wants_shared_inputs(self, inputs: np.ndarray) -> bool:
        return inputs.nbytes >= self.share_inputs_min_bytes

    def publish_inputs(self, inputs: np.ndarray) -> "PublishedInput | None":
        """Register ``inputs`` for digest-keyed publication to workers.

        No network traffic happens here: the actual ``publish_inputs``
        frame goes out lazily, once per worker, the first time a feeder
        is about to send that worker a map frame referencing the digest
        — and never again while the worker keeps its cache (the whole
        point: consecutive batches over the same fixed inputs transmit
        the matrix exactly once per worker).
        """
        if not self.wants_shared_inputs(inputs):
            return None
        digest = self._digest_cache.digest(inputs)
        with self._publish_lock:
            # Refresh the LRU position and pin the digest for the
            # duration of its batch, then evict beyond the bound —
            # oldest *unpinned* digest first, dropping its worker acks
            # too, so later reuse republishes instead of referencing a
            # forgotten matrix.  Pinned digests are never evicted (the
            # bound may be exceeded transiently while more than
            # ``max_cached_inputs`` distinct-input batches are in
            # flight).
            self._inputs_by_digest.pop(digest, None)
            self._inputs_by_digest[digest] = inputs
            self._pinned[digest] = self._pinned.get(digest, 0) + 1
            while len(self._inputs_by_digest) > self.max_cached_inputs:
                evictable = next(
                    (
                        d
                        for d in self._inputs_by_digest
                        if not self._pinned.get(d)
                    ),
                    None,
                )
                if evictable is None:
                    break
                del self._inputs_by_digest[evictable]
                for digests in self._acked.values():
                    digests.discard(evictable)
        return PublishedInput(digest, tuple(inputs.shape), np.dtype(inputs.dtype).str)

    def release_inputs(self, handle: "PublishedInput") -> None:
        """Unpin a completed batch's digest; the matrix stays cached.

        Cross-batch reuse is the point of publication, so nothing is
        released over the wire here — the digest merely becomes eligible
        for LRU eviction once no in-flight batch references it.
        """
        with self._publish_lock:
            count = self._pinned.get(handle.digest, 0) - 1
            if count > 0:
                self._pinned[handle.digest] = count
            else:
                self._pinned.pop(handle.digest, None)

    def _ensure_published(self, link: _WorkerLink, handle: "PublishedInput") -> None:
        """Ship the handle's matrix to this link's worker unless acked.

        The payload rides the best array codec the link's session
        negotiated (``gf2pack`` bit-packs GF(2) matrices to an eighth of
        the raw bytes) and the bytes actually written are counted per
        codec on ``exec_publish_bytes_total``.

        Serialized per address: concurrent map calls racing to publish
        the same digest to the same worker take the address's send lock,
        so the loser of the race finds the ack and sends nothing —
        exactly one ``publish_inputs`` frame per (worker, digest).

        Raises :class:`ConnectionError` on transport failure or a
        non-``ok`` reply; the caller treats that like any other link
        failure (the link sits out the map call).
        """
        address = link.address
        with self._publish_lock:
            if handle.digest in self._acked.setdefault(address, set()):
                return
            send_lock = self._publish_send_locks.setdefault(
                address, threading.Lock()
            )
        with send_lock:
            with self._publish_lock:
                if handle.digest in self._acked.setdefault(address, set()):
                    return  # another map call published while we waited
                inputs = self._inputs_by_digest.get(handle.digest)
            if inputs is None:  # pragma: no cover - engine publishes first
                raise ConnectionError(
                    f"unknown input digest {handle.digest[:12]}…"
                )
            codec, data = encode_array_payload(inputs, link.codecs)
            reply = link.request(
                (
                    "publish_inputs",
                    handle.digest,
                    handle.shape,
                    handle.dtype_str,
                    codec,
                    data,
                )
            )
            if reply[0] != "ok":
                raise ConnectionError(f"publish_inputs rejected: {reply[0]!r}")
            with self._publish_lock:
                self._acked.setdefault(address, set()).add(handle.digest)
            self.registry.counter("exec_publish_frames_total").inc()
            self.registry.counter(
                "exec_publish_bytes_total", codec=codec
            ).inc(len(data))

    def _ensure_registered(
        self, link: _WorkerLink, fn_digest: str, fn_bytes: bytes
    ) -> None:
        """Ship the encoded task callable to this link's worker unless acked.

        The ``register_fn`` twin of :meth:`_ensure_published`: same
        per-address send lock, same ack table, same self-healing
        (``("need_fn", digest)`` forgets the stale ack and re-registers).
        The worker verifies the digest against the bytes and will only
        ever *decode* them against its own registry — code never
        travels, only references to code both ends already have.
        """
        address = link.address
        with self._publish_lock:
            if fn_digest in self._fn_acks.setdefault(address, set()):
                return
            send_lock = self._publish_send_locks.setdefault(
                address, threading.Lock()
            )
        with send_lock:
            with self._publish_lock:
                if fn_digest in self._fn_acks.setdefault(address, set()):
                    return  # another map call registered while we waited
            reply = link.request(("register_fn", fn_digest, fn_bytes))
            if reply[0] != "ok":
                raise ConnectionError(f"register_fn rejected: {reply[0]!r}")
            with self._publish_lock:
                self._fn_acks.setdefault(address, set()).add(fn_digest)

    def _bind_local(self, fn: Callable[[Any], Any]) -> None:
        """Give a locally-run task its published inputs back.

        The local-fallback path executes the same callable the workers
        would have decoded: if it references a published digest, the
        matrix must be rebound from the executor's own store before
        ``fn`` can run in this process.
        """
        handle = getattr(fn, "shared_input", None)
        if isinstance(handle, PublishedInput) and not handle.bound:
            with self._publish_lock:
                inputs = self._inputs_by_digest.get(handle.digest)
            if inputs is not None:
                handle.bind(inputs)

    # -- Executor contract ----------------------------------------------
    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list[Any]:
        """Run ``fn`` over ``items`` on the worker fleet, in order."""
        items = list(items)
        if not items:
            return []
        try:
            # The schema probe replaces the old pickle probe: the
            # callable and a sample item must be expressible in the
            # closed wire vocabulary (registered callables/classes plus
            # plain data) or the whole map runs locally — loudly.
            fn_bytes = encode_value(fn)
            encode_value(items[0])
        except UnencodableError as probe_exc:
            self._bind_local(fn)
            return self._unpicklable_fallback(
                fn,
                items,
                probe_exc,
                action="running locally",
                reason="not wire-encodable",
            )
        fn_digest = function_digest(fn_bytes)
        links = self._fresh_links()
        try:
            with self.tracer.span("map", track="engine", items=len(items)):
                return self._map_over_links(
                    fn, fn_digest, fn_bytes, items, links
                )
        finally:
            for link in links:
                link.drop()

    def _map_over_links(
        self,
        fn: Callable[[Any], Any],
        fn_digest: str,
        fn_bytes: bytes,
        items: list[Any],
        links: list[_WorkerLink],
    ) -> list[Any]:
        chunksize = self.chunksize or self._default_chunksize(
            len(items), len(links), stealing=self.scheduling == "steal"
        )
        scheduler = ChunkScheduler(
            items,
            chunksize,
            lanes=len(links),
            stealing=self.scheduling == "steal",
            tracer=self.tracer,
        )
        results: list[Any] = [None] * len(items)
        lock = threading.Lock()
        task_error: list[BaseException] = []
        dead: set[int] = set()
        #: lane → times it was killed this map call; resurrection is
        #: allowed while the count stays within ``lane_retries``.
        attempts: dict[int, int] = {}
        shared = getattr(fn, "shared_input", None)
        handle = shared if isinstance(shared, PublishedInput) else None

        def kill_lane(index: int) -> None:
            """Mark a lane dead and move its queued chunks to survivors.

            The retire happens under the map lock so concurrent lane
            deaths serialize: a later kill sees every chunk an earlier
            one parked, and nothing is ever dealt onto a lane that is
            already dead (which static mode would strand).  Re-killing
            an already-dead lane retires again — a chunk requeued onto
            it by a feeder that unblocked *after* the first kill must
            still migrate to the survivors.
            """
            with lock:
                already_dead = index in dead
                if not already_dead:
                    dead.add(index)
                    attempts[index] = attempts.get(index, 0) + 1
                survivors = [i for i in range(len(links)) if i not in dead]
                scheduler.retire_lane(index, survivors)
            if not already_dead:
                address = links[index].address
                self.recorder.record(
                    "lane_death",
                    lane=index,
                    worker=f"{address[0]}:{address[1]}",
                    survivors=len(survivors),
                )
                self.tracer.instant(
                    "lane_death", track=f"lane-{index}", survivors=len(survivors)
                )

        def heal_reply(link: _WorkerLink, frame: tuple[Any, ...], reply: Any) -> Any:
            """Resolve ``need`` / ``need_fn`` replies by re-uploading.

            The worker lost a digest (it restarted, or its own bounded
            cache evicted it under concurrent-batch thrash): forget the
            stale ack, re-upload, retry — a bounded number of times, so
            a hot eviction loop degrades to a lane failure rather than
            spinning.
            """
            for _ in range(3):
                kind = reply[0]
                if kind == "need":
                    with self._publish_lock:
                        self._acked.get(link.address, set()).discard(reply[1])
                    if handle is None or reply[1] != handle.digest:
                        raise ConnectionError(
                            f"worker demanded unknown inputs {reply[1]!r}"
                        )
                    self._ensure_published(link, handle)
                elif kind == "need_fn":
                    with self._publish_lock:
                        self._fn_acks.get(link.address, set()).discard(reply[1])
                    if reply[1] != fn_digest:
                        raise ConnectionError(
                            f"worker demanded unknown callable {reply[1]!r}"
                        )
                    self._ensure_registered(link, fn_digest, fn_bytes)
                else:
                    break
                reply = link.request(frame)
            return reply

        def feed(index: int, link: _WorkerLink) -> None:
            """Pull chunks for one worker — own deque first, then steals."""
            track = f"lane-{index}"
            while True:
                with lock:
                    if task_error:
                        return
                chunk = scheduler.next_chunk(index)
                if chunk is None:
                    return
                # When tracing, the chunk span's context id rides the
                # map frame as an extra element — a tracer-armed worker
                # tags its execution span with it, so client and worker
                # timelines correlate.  With tracing off the frame is
                # the classic 3-tuple: the wire is byte-identical.
                if self.tracer.enabled:
                    ctx = self.tracer.new_context()
                    frame = ("map", fn_digest, chunk.items, ctx)
                    span = self.tracer.span(
                        "chunk",
                        track=track,
                        start=chunk.start,
                        items=len(chunk),
                        worker=f"{link.address[0]}:{link.address[1]}",
                        ctx=ctx,
                    )
                else:
                    frame = ("map", fn_digest, chunk.items)
                    span = None
                try:
                    # Upload lazily, only when this worker is actually
                    # about to receive a frame referencing the digests —
                    # a lane that never claims a chunk never gets the
                    # callable or the matrix.  O(1) after the first
                    # chunk (ack tables).
                    self._ensure_registered(link, fn_digest, fn_bytes)
                    if handle is not None:
                        self._ensure_published(link, handle)
                    reply = heal_reply(link, frame, link.request(frame))
                    kind = reply[0]
                    if kind == "err":
                        with lock:
                            task_error.append(reply[1])
                        return
                    if kind != "ok":
                        raise ConnectionError(f"unknown reply kind {kind!r}")
                    payload = list(reply[1])
                    if len(payload) != len(chunk):
                        raise ConnectionError(
                            f"short reply: {len(payload)} results for "
                            f"{len(chunk)} tasks"
                        )
                except Exception as exc:  # noqa: BLE001 - any transport/
                    # protocol failure (dropped socket, chunk deadline,
                    # frame that failed MAC or schema verification,
                    # malformed reply): the chunk's fate is unknown, but
                    # tasks are pure, so rerunning it elsewhere is safe.
                    # The failure is categorized into telemetry and
                    # counts as a liveness miss; the lane sits out until
                    # (maybe) resurrected, and its queued chunks move to
                    # the survivors.
                    category = _failure_category(exc)
                    self.telemetry.record(link.address, category)
                    self.health.record_miss(link.address, reason=category)
                    link.drop()
                    scheduler.requeue(chunk, index)
                    if span is not None:
                        span.args["outcome"] = category
                        span.close()
                    kill_lane(index)
                    return
                with lock:
                    results[chunk.start : chunk.start + len(chunk)] = payload
                scheduler.mark_done(chunk)
                if span is not None:
                    span.close()
                self.health.record_ok(link.address)

        stop_monitor = threading.Event()

        def monitor() -> None:
            """Heartbeat: probe workers, declare the unresponsive dead.

            Probes ride *fresh* connections — a hung serve loop still
            completes TCP handshakes on the in-flight socket, so only
            an independent request can tell hung from busy.  A worker
            the board declares dead gets its in-flight link dropped,
            which unblocks a feeder waiting on a wedged process long
            before ``task_timeout`` would.
            """
            while not stop_monitor.wait(self.heartbeat_interval):
                for index, link in enumerate(links):
                    if stop_monitor.is_set():
                        return
                    address = link.address
                    if self.health.is_dead(address):
                        continue
                    with self.tracer.span(
                        "probe",
                        track="heartbeat",
                        lane=index,
                        worker=f"{address[0]}:{address[1]}",
                    ) as probe_span:
                        alive = self._probe(address, index)
                        if self.tracer.enabled:
                            probe_span.args["alive"] = alive
                    if alive:
                        self.health.record_ok(address)
                        continue
                    self.telemetry.record(address, "heartbeat")
                    state = self.health.record_miss(address, reason="heartbeat")
                    if state == DEAD and not stop_monitor.is_set():
                        link.drop()
                        kill_lane(index)

        monitor_thread: "threading.Thread | None" = None
        if self.heartbeat_interval is not None:
            monitor_thread = threading.Thread(target=monitor, daemon=True)
            monitor_thread.start()

        # Dispatch rounds.  Feeder threads exit when no chunk is
        # available to them, so a chunk re-queued by a worker dying
        # *after* the survivors already left would strand without the
        # outer loop: each round first resurrects lanes still within
        # their retry budget (after the deterministic backoff delay),
        # then re-dispatches leftovers over the live links.  A lane
        # that fails to (re)connect is killed like any other link
        # failure — critically, its dealt chunks move to the survivors,
        # or static mode would spin forever on chunks pinned to a lane
        # that never runs.  Every round either completes a chunk or
        # permanently burns a lane attempt (``attempts`` only grows,
        # bounded by ``lane_retries``), so the loop terminates.
        try:
            while scheduler.pending and not task_error:
                with lock:
                    revivable = [
                        index
                        for index in sorted(dead)
                        if attempts.get(index, 0) <= self.lane_retries
                        and not self.health.is_dead(links[index].address)
                    ]
                for index in revivable:
                    time.sleep(
                        self._retry_policy.delay(
                            max(attempts.get(index, 1) - 1, 0), lane=index
                        )
                    )
                    with lock:
                        dead.discard(index)
                threads = []
                for index, link in enumerate(links):
                    with lock:
                        if index in dead:
                            continue
                    if not link.ensure_connected():
                        kill_lane(index)
                        continue
                    thread = threading.Thread(
                        target=feed, args=(index, link), daemon=True
                    )
                    thread.start()
                    threads.append(thread)
                if not threads:
                    break  # nobody reachable: leftovers go to the fallback
                for thread in threads:
                    thread.join()
        finally:
            stop_monitor.set()
            if monitor_thread is not None:
                monitor_thread.join(timeout=1.0)
        self.registry.gauge("exec_last_map_steals").set(scheduler.total_steals())
        self.registry.gauge("exec_last_map_requeues").set(
            scheduler.total_requeues()
        )
        if scheduler.total_steals():
            self.registry.counter("exec_steals_total").inc(
                scheduler.total_steals()
            )
        if scheduler.total_requeues():
            self.registry.counter("exec_requeues_total").inc(
                scheduler.total_requeues()
            )

        if task_error:
            raise task_error[0]
        leftovers = scheduler.drain()
        if leftovers:
            # Every worker is gone (or none were reachable to begin with).
            if not self.local_fallback:
                raise ConnectionError(
                    f"{len(leftovers)} task chunks undelivered and no "
                    "distributed worker is reachable"
                )
            self.registry.counter("exec_degraded_maps_total").inc()
            self.recorder.record(
                "fleet_degraded", chunks=len(leftovers), reason="no worker reachable"
            )
            warnings.warn(
                f"no distributed worker reachable; running {len(leftovers)} "
                "remaining chunks locally",
                FleetDegradedWarning,
                stacklevel=2,
            )
            self._bind_local(fn)
            with self.tracer.span("local_fallback", track="engine"):
                for chunk in leftovers:
                    results[chunk.start : chunk.start + len(chunk)] = [
                        fn(item) for item in chunk.items
                    ]
        return results

    def close(self) -> None:
        """Release published inputs on every worker that cached them.

        Connections are per-call and already closed; what outlives a map
        call is the workers' digest-keyed input caches.  Best-effort: a
        worker that is unreachable right now loses nothing durable — its
        cache dies with its process anyway.
        """
        with self._publish_lock:
            acked = {addr: set(digests) for addr, digests in self._acked.items()}
            self._acked.clear()
            self._fn_acks.clear()
            self._inputs_by_digest.clear()
            self._pinned.clear()
            self._digest_cache.clear()
        for address, digests in acked.items():
            if not digests:
                continue
            link = _WorkerLink(
                address,
                self.connect_timeout,
                self.task_timeout,
                telemetry=self.telemetry,
                secret=self.secret,
                ssl_context=self.ssl_context,
            )
            if not link.ensure_connected():
                continue
            try:
                for digest in digests:
                    link.request(("release_inputs", digest))
            except ConnectionError:
                # Best-effort by design (the worker's cache dies with
                # its process anyway) — but the failure is counted, not
                # swallowed.
                self.telemetry.record(address, "release")
            finally:
                link.drop()

    def __enter__(self) -> "DistributedExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class LoopbackWorker:
    """An in-process worker thread serving the distributed protocol.

    Hosts :func:`repro.exec.worker.serve` on a daemon thread bound to an
    OS-assigned loopback port — the distributed stack end-to-end
    (handshake, frames, sockets, redistribution) with no extra
    processes, which is what the test-suite and single-machine smoke
    runs want.  ``secret`` / ``ssl_context`` configure the worker-side
    authentication exactly as the CLI flags would (defaulting to the
    loopback development secret, like the client); ``registry`` receives
    the worker-side handshake and rejected-frame counters.

    ``max_requests_per_connection`` makes the worker hang up after that
    many frames on each connection — deterministic fault injection for
    the client's mid-batch failover path.  ``request_delay`` sleeps
    that long before each map frame — latency injection turning this
    worker into the slow host of a synthetic heterogeneous fleet (how
    ``benchmarks/bench_exec_steal.py`` builds its straggler).
    ``fault_injector`` arms the serve loop with a full deterministic
    :class:`~repro.exec.faults.FaultPlan` schedule — crashes, torn and
    corrupt frames, refusals, lost publishes, hangs — which is how the
    fault-matrix conformance suite drives in-process chaos.
    ``tracer`` arms the serve loop with a (shared, in-process)
    :class:`~repro.obs.trace.Tracer`, so worker-side chunk-execution
    spans — tagged with the context id each map frame carries — land in
    the same timeline as the client's per-lane spans.
    """

    def __init__(
        self,
        max_requests_per_connection: int | None = None,
        request_delay: float = 0.0,
        max_cached_inputs: int = 32,
        fault_injector: "FaultInjector | None" = None,
        tracer: "Tracer | NullTracer" = NULL_TRACER,
        secret: "bytes | str | None" = None,
        ssl_context: "ssl.SSLContext | None" = None,
        registry: "MetricsRegistry | None" = None,
    ):
        self._stop = threading.Event()
        ready = threading.Event()
        address: list[tuple[str, int]] = []

        def on_ready(bound: tuple[str, int]) -> None:
            address.append(bound)
            ready.set()

        self._thread = threading.Thread(
            target=serve,
            kwargs=dict(
                host="127.0.0.1",
                port=0,
                stop_event=self._stop,
                ready_callback=on_ready,
                max_requests_per_connection=max_requests_per_connection,
                request_delay=request_delay,
                max_cached_inputs=max_cached_inputs,
                fault_injector=fault_injector,
                tracer=tracer,
                secret=secret,
                ssl_context=ssl_context,
                registry=registry,
            ),
            daemon=True,
        )
        self._thread.start()
        if not ready.wait(timeout=5.0):  # pragma: no cover - startup failure
            raise RuntimeError("loopback worker failed to start")
        self.address: tuple[str, int] = address[0]

    @property
    def endpoint(self) -> str:
        host, port = self.address
        return f"{host}:{port}"

    def stop(self) -> None:
        """Shut the serve loop down and join its thread."""
        self._stop.set()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "LoopbackWorker":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
