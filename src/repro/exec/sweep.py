"""Resumable, adaptive, asynchronous parameter sweeps: ``SweepDriver``.

:func:`repro.analysis.sweep.run_sweep` maps a measure function over a
grid and blocks until the last point returns.  ``SweepDriver`` is its
production-scale sibling built on the engine's asynchronous batches:

* **async** — the whole grid is submitted up front via
  :meth:`~repro.core.engine.Engine.submit_batch`, so many points'
  batches are in flight at once (on a warm
  :class:`~repro.exec.pool.WorkerPool` or a
  :class:`~repro.exec.distributed.DistributedExecutor` fleet);
* **resumable** — every *completed* point is appended to a JSONL
  checkpoint journal; re-running the same sweep against the same journal
  submits only the missing points (zero recomputation), so an
  interrupted overnight sweep continues where it stopped;
* **adaptive** — instead of a fixed trial count, give a target
  confidence-interval width: points keep receiving top-up batches until
  the interval around their statistic is tight enough (or ``max_trials``
  is hit), so easy points finish cheap and hard points get the budget;
* **prioritised** — pending work is ordered by a priority queue:
  ``priority=`` ranks grid points (lower runs first), ``max_inflight``
  bounds how many batches are in flight, and adaptive **top-up batches
  cooperatively yield** to initial batches of not-yet-started points of
  the same priority — short points overtake long adaptive tails instead
  of queueing behind them, and a resumed sweep reorders its remaining
  points the same way.

Determinism: batch ``b`` of grid point ``i`` is seeded with
``SeedSequence(seed, spawn_key=(i, b))`` — a pure function of the driver
seed and grid position.  Interrupting, resuming, reordering completions,
reprioritising, or changing the executor never changes any point's
trials.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
import json
import math
import os
from concurrent.futures import FIRST_COMPLETED
from concurrent.futures import wait as _wait_futures
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping

import numpy as np

from ..analysis.sweep import SweepPoint, SweepResult
from ..core.engine import BatchResult, Engine, Executor, RunSpec
from ..infotheory.estimation import _normal_quantile, wilson_interval
from ..obs.metrics import MetricsRegistry
from ..obs.trace import NULL_TRACER, NullTracer, Tracer
from .futures import BatchFuture

__all__ = [
    "SweepDriver",
    "params_key",
    "load_journal",
    "append_journal",
    "default_trial_values",
]


# ----------------------------------------------------------------------
# Checkpoint journal
# ----------------------------------------------------------------------
def _jsonable(obj: Any) -> Any:
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.bool_):
        return bool(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    raise TypeError(f"{type(obj).__name__} is not JSON-serializable")


def params_key(params: Mapping[str, Any]) -> str:
    """Canonical identity of a grid point: sorted-key JSON of its params."""
    return json.dumps(dict(params), sort_keys=True, default=_jsonable)


def load_journal(path: "str | Path") -> dict[str, dict[str, float]]:
    """Completed points of a previous run: ``params_key → values``.

    Tolerates a truncated final line (the run was killed mid-write);
    everything before it is kept.  A missing file is an empty journal.
    """
    journal: dict[str, dict[str, float]] = {}
    try:
        stream = open(path, "r", encoding="utf-8")
    except FileNotFoundError:
        return journal  # no journal yet: nothing completed
    with stream:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail write from an interrupted run
            journal[params_key(record["params"])] = record["values"]
    return journal


def append_journal(
    path: "str | Path", params: Mapping[str, Any], values: Mapping[str, float]
) -> None:
    """Durably append one completed point to the checkpoint journal.

    If an interrupted run left a torn, newline-less tail, the new record
    starts on a fresh line instead of being glued to the garbage — the
    torn line stays unparseable (and its point is recomputed), but the
    record written here must survive the next :func:`load_journal`.
    """
    line = json.dumps(
        {"params": dict(params), "values": dict(values)},
        sort_keys=True,
        default=_jsonable,
    )
    payload = (line + "\n").encode("utf-8")
    with open(path, "ab+") as stream:
        stream.seek(0, os.SEEK_END)
        end = stream.tell()
        if end:
            stream.seek(end - 1)
            if stream.read(1) != b"\n":
                payload = b"\n" + payload
        stream.write(payload)
        stream.flush()
        os.fsync(stream.fileno())


# ----------------------------------------------------------------------
# Adaptive accounting
# ----------------------------------------------------------------------
def default_trial_values(batch: BatchResult) -> np.ndarray:
    """Per-trial statistic a sweep aggregates: processor 0's 0/1 decision."""
    return batch.decisions(0).astype(np.float64)


@dataclass
class _PointState:
    """Accumulated trials of one in-flight grid point."""

    index: int
    params: Mapping[str, Any]
    values: list[np.ndarray] = field(default_factory=list)
    batches: int = 0
    retries: int = 0

    @property
    def trials(self) -> int:
        return sum(len(v) for v in self.values)

    def stacked(self) -> np.ndarray:
        return np.concatenate(self.values) if self.values else np.empty(0)


class SweepDriver:
    """Drive a grid of batched experiments to completion, asynchronously.

    Parameters
    ----------
    spec_fn:
        ``spec_fn(**params) → RunSpec`` describing one grid point's
        batch.  The spec's ``seed`` is overridden by the driver (see
        ``seed``) so that resume and top-up batches are deterministic.
    executor / engine:
        Backend batches run on: pass ``executor`` (e.g. a warm
        :class:`~repro.exec.pool.WorkerPool`) to let the driver own an
        :class:`~repro.core.engine.Engine`, or a pre-built ``engine`` to
        share one across drivers (the caller then owns its lifecycle).
    trials:
        Trials in the initial batch of every point — and in each top-up
        batch when the sweep is adaptive.
    ci_width:
        Adaptive target: keep topping up a point until the two-sided
        confidence interval of its mean statistic — Wilson score when the
        statistic is 0/1 (honest at accuracies near 0 or 1), normal
        approximation otherwise — is at most this wide.  ``None``
        disables adaptivity (one batch per point).
    max_trials:
        Hard per-point budget for the adaptive loop (default
        ``32 * trials``).
    confidence:
        Confidence level of the adaptive interval (default 0.95).
    trial_values:
        ``BatchResult → (trials,) float array`` extracting the per-trial
        statistic; defaults to processor 0's 0/1 decisions, making
        ``mean`` an accept rate / accuracy.
    checkpoint:
        JSONL journal path.  Completed points are appended as they
        finish; points already present are returned from the journal
        without resubmitting anything.
    seed:
        Master seed.  Batch ``b`` of point ``i`` runs under
        ``SeedSequence(seed, spawn_key=(i, b))``.
    priority:
        ``priority(params) → float`` ranking pending work; **lower runs
        first**.  ``None`` (the default) keeps grid order.  Priorities
        order scheduling only — they never change any point's trials
        (seeds are a pure function of grid position and batch number),
        so two drivers with opposite priorities produce bit-identical
        values.  On resume, journal-completed points are skipped and the
        remainder is re-ranked the same way.
    max_inflight:
        Upper bound on batches in flight at once.  ``None`` (the
        default) submits greedily in priority order.  A finite bound is
        what gives top-up *preemption* teeth: when a point finishes a
        batch unconverged, its top-up goes back into the priority queue
        — behind every not-yet-started point of the same priority —
        instead of resubmitting immediately, so long adaptive tails
        cannot starve short points of the bounded in-flight slots.
    batch_retries:
        Times one point's batch is resubmitted after failing with a
        :class:`ConnectionError` (a fleet outage surfaced by a
        ``local_fallback=False`` distributed backend) before the sweep
        gives up and re-raises.  A retried batch reruns the **same**
        spec — batch ``b`` of point ``i`` is seeded purely by
        ``(i, b)`` — so values on eventual success are bit-identical to
        an unfaulted run.  Task errors are never retried (a failing
        trial is deterministic; retrying cannot fix it).  The driver
        counts resubmissions in :attr:`retried_batches`.

    A fixed-trials sweep over two grid points, smallest ``k`` first:

    >>> import numpy as np
    >>> from repro.core import RunSpec
    >>> from repro.distributions import UniformRows
    >>> from repro.exec import SweepDriver
    >>> from repro.protocols import GlobalParityProtocol
    >>> def spec_fn(n):
    ...     return RunSpec(
    ...         protocol=GlobalParityProtocol(),
    ...         distribution=UniformRows(n, 4),
    ...         seed=0,
    ...     )
    >>> driver = SweepDriver(spec_fn, trials=16, seed=1)
    >>> result = driver.run([{"n": 2}, {"n": 3}])
    >>> [point["trials"] for point in result.points]
    [16.0, 16.0]
    >>> all(0.0 <= point["mean"] <= 1.0 for point in result.points)
    True
    """

    def __init__(
        self,
        spec_fn: Callable[..., RunSpec],
        *,
        executor: "Executor | str | None" = None,
        engine: Engine | None = None,
        trials: int = 64,
        ci_width: float | None = None,
        max_trials: int | None = None,
        confidence: float = 0.95,
        trial_values: Callable[[BatchResult], np.ndarray] | None = None,
        checkpoint: "str | Path | None" = None,
        seed: int = 0,
        priority: Callable[[Mapping[str, Any]], float] | None = None,
        max_inflight: int | None = None,
        batch_retries: int = 1,
        registry: "MetricsRegistry | None" = None,
        tracer: "Tracer | NullTracer" = NULL_TRACER,
    ):
        if trials < 1:
            raise ValueError("trials per batch must be >= 1")
        if batch_retries < 0:
            raise ValueError("batch_retries must be >= 0")
        if ci_width is not None and ci_width <= 0:
            raise ValueError("ci_width must be positive")
        if max_trials is not None and max_trials < trials:
            raise ValueError("max_trials must be >= the initial batch size")
        if not 0 < confidence < 1:
            raise ValueError("confidence must lie in (0, 1)")
        if engine is not None and executor is not None:
            raise ValueError("pass either executor or engine, not both")
        if max_inflight is not None and max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.spec_fn = spec_fn
        self._engine = engine
        self._executor = executor
        self.trials = trials
        self.ci_width = ci_width
        self.max_trials = max_trials if max_trials is not None else 32 * trials
        self.confidence = confidence
        self.trial_values = trial_values or default_trial_values
        self.checkpoint = checkpoint
        self.seed = seed
        self.priority = priority
        self.max_inflight = max_inflight
        self.batch_retries = batch_retries
        #: Unified metrics home (shared when passed in) and span tracer
        #: for the point/top-up lifecycle.
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer

    @property
    def retried_batches(self) -> int:
        """Batches resubmitted after a ConnectionError (registry-backed)."""
        return int(self.registry.total("sweep_retried_batches_total"))

    # -- seeding --------------------------------------------------------
    def _batch_spec(self, params: Mapping[str, Any], index: int, batch: int) -> RunSpec:
        spec = self.spec_fn(**params)
        if not isinstance(spec, RunSpec):
            raise TypeError(
                f"spec_fn must return a RunSpec, got {type(spec).__name__}"
            )
        seed = np.random.SeedSequence(self.seed, spawn_key=(index, batch))
        return dataclasses.replace(spec, seed=seed)

    # -- adaptive accounting --------------------------------------------
    def _point_values(self, state: _PointState) -> dict[str, float]:
        values = state.stacked()
        n = len(values)
        mean = float(values.mean()) if n else math.nan
        if n and np.isin(values, (0.0, 1.0)).all():
            # Bernoulli statistic (the default decision/accuracy case):
            # Wilson scores stay honest at the extremes — an all-1s batch
            # gets a CI like [0.89, 1.0], not the degenerate [1.0, 1.0]
            # of the sample-std formula, so adaptive stopping cannot
            # declare victory on a lucky uniform batch.
            interval = wilson_interval(
                int(values.sum()), n, confidence=self.confidence
            )
            lower, upper = interval.lower, interval.upper
        elif n > 1:
            half = (
                _normal_quantile(0.5 + self.confidence / 2.0)
                * float(values.std(ddof=1))
                / math.sqrt(n)
            )
            lower, upper = mean - half, mean + half
        else:
            half = math.inf if self.ci_width is not None else 0.0
            lower, upper = mean - half, mean + half
        return {
            "mean": mean,
            "ci_lower": lower,
            "ci_upper": upper,
            "trials": float(n),
            "batches": float(state.batches),
        }

    def _is_converged(self, values: dict[str, float]) -> bool:
        if self.ci_width is None:
            return True
        if values["trials"] >= self.max_trials:
            return True
        return (values["ci_upper"] - values["ci_lower"]) <= self.ci_width

    # -- the drive loop -------------------------------------------------
    def run(self, grid: Iterable[Mapping[str, Any]]) -> SweepResult:
        """Drive every missing grid point to convergence; block until done.

        Pending work flows through a priority queue keyed by
        ``(priority(params), is_top_up, arrival)``: initial batches of
        unstarted points run before adaptive top-ups of equal priority
        (cooperative preemption — a point that finishes a batch
        unconverged re-enters the queue rather than jumping it), and
        ``max_inflight`` bounds how many batches occupy the engine at
        once.  Scheduling order never touches values: batch ``b`` of
        point ``i`` is seeded purely by ``(i, b)``.

        Returns a :class:`~repro.analysis.sweep.SweepResult` in grid
        order, mixing journal-loaded and freshly measured points.  Point
        values: ``mean``, ``ci_lower`` / ``ci_upper``, ``trials``,
        ``batches``.
        """
        grid = [dict(params) for params in grid]
        journal = (
            load_journal(self.checkpoint) if self.checkpoint is not None else {}
        )
        finished: dict[int, dict[str, float]] = {}
        engine = self._engine if self._engine is not None else Engine(self._executor)
        pending: dict[BatchFuture, _PointState] = {}
        #: Min-heap of runnable work.  Key: user priority first, then the
        #: initial-before-top-up class, then arrival order (ties stay
        #: FIFO and the heap never compares _PointState objects).
        ready: list[tuple[float, int, int, _PointState]] = []
        arrivals = itertools.count()

        def enqueue(state: _PointState) -> None:
            rank = (
                float(self.priority(grid[state.index]))
                if self.priority is not None
                else 0.0
            )
            heapq.heappush(
                ready, (rank, 1 if state.batches else 0, next(arrivals), state)
            )

        def submit_ready() -> None:
            while ready and (
                self.max_inflight is None or len(pending) < self.max_inflight
            ):
                _, _, _, state = heapq.heappop(ready)
                spec = self._batch_spec(
                    grid[state.index], state.index, state.batches
                )
                kind = "top_up" if state.batches else "initial"
                self.tracer.instant(
                    "submit", track="sweep", point=state.index,
                    batch=state.batches, kind=kind,
                )
                self.registry.counter("sweep_batches_total", kind=kind).inc()
                pending[engine.submit_batch(spec, self.trials)] = state

        try:
            for index, params in enumerate(grid):
                key = params_key(params)
                if key in journal:
                    finished[index] = dict(journal[key])
                    continue
                enqueue(_PointState(index=index, params=params))
            submit_ready()
            while pending:
                # One wait over the in-flight set, then drain everything
                # that finished — re-enqueued top-ups compete with queued
                # initial batches for the freed in-flight slots.
                by_inner = {future._inner: future for future in pending}
                done, _ = _wait_futures(
                    list(by_inner), return_when=FIRST_COMPLETED
                )
                for inner in done:
                    future = by_inner[inner]
                    state = pending.pop(future)
                    try:
                        batch = future.result()
                    except ConnectionError:
                        # A fleet outage killed the batch before any
                        # result existed.  Its spec is a pure function
                        # of (index, batch number) — ``state.batches``
                        # was not advanced — so the re-enqueued batch
                        # reruns the identical trials: values are
                        # bit-identical to an unfaulted run.
                        if state.retries >= self.batch_retries:
                            raise
                        state.retries += 1
                        self.registry.counter("sweep_retried_batches_total").inc()
                        self.tracer.instant(
                            "retry", track="sweep", point=state.index,
                            batch=state.batches,
                        )
                        enqueue(state)
                        continue
                    state.values.append(np.asarray(self.trial_values(batch)))
                    state.batches += 1
                    values = self._point_values(state)
                    if self._is_converged(values):
                        finished[state.index] = values
                        self.tracer.instant(
                            "point_converged", track="sweep",
                            point=state.index, batches=state.batches,
                            trials=values["trials"],
                        )
                        if self.checkpoint is not None:
                            append_journal(self.checkpoint, state.params, values)
                    else:
                        enqueue(state)
                submit_ready()
        finally:
            if self._engine is None:
                engine.close(cancel_pending=True)
        return SweepResult(
            points=[
                SweepPoint(params=dict(params), values=finished[index])
                for index, params in enumerate(grid)
            ]
        )
