"""``WorkerPool`` — a warm process pool reused across batches.

:class:`~repro.core.engine.ParallelExecutor` spins up a fresh
``ProcessPoolExecutor`` for every ``map`` call, which is the right
trade-off for one big batch but pays the full process start-up cost
(fork, interpreter state, first-touch imports) on *every* call — sweeps
and estimators that issue many small batches spend more time creating
pools than running trials.  :class:`WorkerPool` keeps one pool alive
across successive ``run_batch`` / ``submit_batch`` calls instead,
amortizing start-up to zero after the first batch (the pooling-over-
per-task-provisioning argument: provision the expensive resource once,
share it across many small jobs).

Warm state the pool preserves across batches:

* **worker processes** — created once, reused by every subsequent map;
* **shared-memory input segments** — fixed input matrices published via
  :meth:`publish_inputs` stay mapped for the life of the pool (keyed by
  content digest, so repeated batches over the same matrix publish it
  exactly once) and workers keep their attachments cached.

Failure semantics: an exception *raised by a task* propagates to the
caller and leaves the pool warm and reusable (trials are independent; one
bad spec must not cost the pool).  A *broken* pool (a worker died — e.g.
OOM-killed) is discarded and rebuilt once, and the batch retried from
scratch — trials are pure, so a retry is safe; if the rebuilt pool breaks
too, the batch falls back to in-process serial execution with a warning.

``idle_timeout`` reaps the worker processes after the pool has been
unused that long (a timer thread calls ``shutdown`` on the inner pool)
and unlinks the published shared-memory segments along with them, so an
idle pool pins no resources; the next map transparently rebuilds the
workers and republishes whatever inputs it needs.  :meth:`close` (or the
context-manager exit) does the same, permanently.

Scheduling: by default each map call runs through the shared
work-stealing :class:`~repro.exec.stealing.ChunkScheduler` — one feeder
thread per worker lane, one chunk in flight per lane, idle lanes
stealing queued chunks from stragglers — so a slow worker (or an
unlucky, expensive chunk) delays the batch by at most one chunk instead
of its whole pre-assigned share.  ``scheduling="static"`` restores the
pre-chunked ``ProcessPoolExecutor.map`` plan.
"""

from __future__ import annotations

import math
import os
import threading
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import shared_memory as _shared_memory
from typing import Any, Callable, Iterable

import numpy as np

from ..core.engine import (
    Executor,
    _DigestCache,
    _SharedInput,
    _create_shared_segment,
    _evict_shared_attachment,
)
from ..obs.metrics import MetricsRegistry
from ..obs.recorder import FlightRecorder
from ..obs.trace import NULL_TRACER, NullTracer, Tracer
from .health import FleetDegradedWarning
from .stealing import ChunkScheduler

__all__ = ["WorkerPool"]


def _run_chunk(fn: Callable[[Any], Any], items: list[Any]) -> list[Any]:
    """One scheduler chunk, executed inside a pool worker process."""
    return [fn(item) for item in items]


class WorkerPool(Executor):
    """A warm, reusable process-pool executor.

    Parameters
    ----------
    max_workers:
        Worker processes; defaults to ``os.cpu_count()``.
    chunksize:
        Items per task shipped to a worker; defaults to
        ``ceil(len(items) / (4 * max_workers))`` per map call.
    idle_timeout:
        Seconds of disuse after which worker processes are reaped (the
        next map call rebuilds them).  ``None`` keeps workers forever.
    share_inputs_min_bytes:
        Fixed input matrices at least this large are published once into
        ``multiprocessing.shared_memory`` and kept mapped until the pool
        idles out (``idle_timeout``) or closes.
    scheduling:
        ``"steal"`` (the default) drives each map call through the
        shared :class:`~repro.exec.stealing.ChunkScheduler`: one feeder
        thread per worker lane keeps at most one chunk in flight at a
        time, so chunks are claimed just-in-time and an idle lane steals
        queued chunks from a straggler instead of waiting out a
        pre-assigned share.  ``"static"`` restores the pre-chunked
        ``ProcessPoolExecutor.map`` plan (the round-robin baseline that
        ``benchmarks/bench_exec_steal.py`` measures against).

    Use as a context manager (or call :meth:`close`) to release workers
    and shared segments deterministically:

    >>> import numpy as np
    >>> from repro.core import Engine, RunSpec
    >>> from repro.exec import WorkerPool
    >>> from repro.protocols import GlobalParityProtocol
    >>> spec = RunSpec(
    ...     protocol=GlobalParityProtocol(),
    ...     inputs=np.eye(3, dtype=np.uint8),
    ...     seed=0,
    ... )
    >>> with WorkerPool(max_workers=2) as pool:
    ...     engine = Engine(pool)
    ...     first = engine.run_batch(spec, 8)    # builds the workers
    ...     second = engine.run_batch(spec, 8)   # reuses them, warm
    >>> first.outputs == second.outputs          # parity of eye(3) is 1
    True
    >>> int(first.decisions(0).sum())
    8
    """

    name = "pool"

    def __init__(
        self,
        max_workers: int | None = None,
        chunksize: int | None = None,
        idle_timeout: float | None = None,
        share_inputs_min_bytes: int = 1 << 16,
        scheduling: str = "steal",
        registry: "MetricsRegistry | None" = None,
        tracer: "Tracer | NullTracer" = NULL_TRACER,
        recorder: "FlightRecorder | None" = None,
    ):
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if idle_timeout is not None and idle_timeout <= 0:
            raise ValueError("idle_timeout must be positive")
        if share_inputs_min_bytes < 1:
            raise ValueError("share_inputs_min_bytes must be >= 1")
        if scheduling not in ("steal", "static"):
            raise ValueError("scheduling must be 'steal' or 'static'")
        self.max_workers = max_workers or (os.cpu_count() or 1)
        self.chunksize = chunksize
        self.idle_timeout = idle_timeout
        self.share_inputs_min_bytes = share_inputs_min_bytes
        self.scheduling = scheduling
        self._pool: ProcessPoolExecutor | None = None
        self._lock = threading.RLock()
        self._active_maps = 0
        self._reap_timer: threading.Timer | None = None
        #: Bumped whenever the current timer is cancelled or replaced; a
        #: fired _reap carrying a stale generation must do nothing (it
        #: lost the race to a map that used the pool in the meantime).
        self._reap_generation = 0
        self._closed = False
        #: digest -> (segment block, handle), alive until close/idle-reap
        self._segments: dict[str, tuple[_shared_memory.SharedMemory, _SharedInput]] = {}
        #: Memoizes content digests of fixed inputs across batches.
        self._digest_cache = _DigestCache()
        #: Unified metrics/trace/flight-recorder hooks (private instances
        #: unless shared ones are passed in); the telemetry counters
        #: below are registry-backed views.
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer
        self.recorder = recorder if recorder is not None else FlightRecorder()

    @property
    def broken_pools(self) -> int:
        """Pools discarded because a worker process died (cumulative)."""
        return int(self.registry.total("pool_broken_total"))

    @property
    def degraded_batches(self) -> int:
        """Batches that degraded to in-process serial execution (each
        also warns with :class:`~repro.exec.health.FleetDegradedWarning`)."""
        return int(self.registry.total("pool_degraded_batches_total"))

    # -- pool lifecycle -------------------------------------------------
    @property
    def warm(self) -> bool:
        """True while worker processes are alive and reusable."""
        return self._pool is not None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._closed:
            raise RuntimeError("WorkerPool is closed")
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._pool

    def _discard_pool(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def _cancel_reap_timer(self) -> None:
        self._reap_generation += 1  # invalidate a fired-but-not-yet-run reap
        if self._reap_timer is not None:
            self._reap_timer.cancel()
            self._reap_timer = None

    def _schedule_reap(self) -> None:
        if self.idle_timeout is None or self._pool is None:
            return
        self._cancel_reap_timer()
        generation = self._reap_generation
        timer = threading.Timer(self.idle_timeout, self._reap, args=(generation,))
        timer.daemon = True
        self._reap_timer = timer
        timer.start()

    def _reap(self, generation: int) -> None:
        with self._lock:
            # Stale timer (a map used the pool since this was armed), or
            # a map started after it fired: either way, keep the pool.
            if generation != self._reap_generation or self._active_maps:
                return
            self._discard_pool()
            # The workers holding the attachments are gone; free the
            # segments too so an idle pool pins no shared memory (the
            # next batch simply republishes what it needs).
            segments = self._take_segments()
            self._reap_timer = None
        self._release_segments(segments)

    def _take_segments(
        self,
    ) -> dict[str, tuple[_shared_memory.SharedMemory, _SharedInput]]:
        segments, self._segments = self._segments, {}
        self._digest_cache.clear()
        return segments

    @staticmethod
    def _release_segments(
        segments: dict[str, tuple[_shared_memory.SharedMemory, _SharedInput]],
    ) -> None:
        for block, handle in segments.values():
            _evict_shared_attachment(handle.name)
            block.close()
            block.unlink()

    # -- Executor contract ----------------------------------------------
    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list[Any]:
        """Run ``fn`` over ``items`` on the warm workers, in order."""
        items = list(items)
        if not items:
            return []
        probe_exc = self._pickle_probe(fn, items)
        if probe_exc is not None:
            return self._unpicklable_fallback(fn, items, probe_exc)
        chunksize = self.chunksize or self._default_chunksize(
            len(items), self.max_workers
        )
        with self._lock:
            self._cancel_reap_timer()
            pool = self._ensure_pool()
            self._active_maps += 1
        last_exc: Exception = RuntimeError("process pool broke")
        try:
            for attempt in (0, 1):
                try:
                    return self._map_once(pool, fn, items, chunksize)
                except BrokenProcessPool as exc:
                    # A worker died mid-batch.  Trials are pure, so retry
                    # the whole batch once on a rebuilt pool, then give up
                    # on parallelism rather than on the batch.
                    last_exc = exc
                    self.registry.counter("pool_broken_total").inc()
                    self.recorder.record(
                        "pool_broken", attempt=attempt, error=str(exc)
                    )
                    with self._lock:
                        if self._pool is pool:
                            self._discard_pool()
                        if attempt == 0:
                            pool = self._ensure_pool()
            self.registry.counter("pool_degraded_batches_total").inc()
            self.recorder.record(
                "pool_degraded", items=len(items), error=str(last_exc)
            )
            warnings.warn(
                f"WorkerPool running batch serially "
                f"({type(last_exc).__name__}: {last_exc})",
                FleetDegradedWarning,
                stacklevel=2,
            )
            with self.tracer.span("serial_fallback", track="pool", items=len(items)):
                return [fn(item) for item in items]
        finally:
            with self._lock:
                self._active_maps -= 1
                if self._active_maps == 0:
                    self._schedule_reap()

    def _map_once(
        self,
        pool: ProcessPoolExecutor,
        fn: Callable[[Any], Any],
        items: list[Any],
        chunksize: int,
    ) -> list[Any]:
        """One attempt at a batch on the current pool.

        ``scheduling="static"`` is the pre-chunked ``pool.map`` plan.
        ``scheduling="steal"`` runs one feeder thread per worker lane
        over the shared :class:`ChunkScheduler`: each lane keeps exactly
        one chunk in flight, so the pool's task queue never holds more
        than ``lanes`` chunks and a lane that finishes early steals
        queued chunks from a straggler instead of idling.  Task
        exceptions and :class:`BrokenProcessPool` both propagate to
        :meth:`map`, which owns the retry/fallback policy.
        """
        if self.scheduling == "static":
            return list(pool.map(fn, items, chunksize=chunksize))
        lanes = max(1, min(self.max_workers, math.ceil(len(items) / chunksize)))
        scheduler = ChunkScheduler(
            items, chunksize, lanes, stealing=True, tracer=self.tracer
        )
        results: list[Any] = [None] * len(items)
        errors: list[BaseException] = []

        def feed(lane: int) -> None:
            while not errors:
                chunk = scheduler.next_chunk(lane)
                if chunk is None:
                    return
                try:
                    with self.tracer.span(
                        "chunk",
                        track=f"lane-{lane}",
                        start=chunk.start,
                        items=len(chunk),
                    ):
                        payload = pool.submit(_run_chunk, fn, chunk.items).result()
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    errors.append(exc)
                    return
                results[chunk.start : chunk.start + len(chunk)] = payload
                scheduler.mark_done(chunk)

        if lanes == 1:
            feed(0)
        else:
            threads = [
                threading.Thread(target=feed, args=(lane,), daemon=True)
                for lane in range(lanes)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        if errors:
            raise errors[0]
        return results

    # -- shared-memory input protocol -----------------------------------
    def wants_shared_inputs(self, inputs: np.ndarray) -> bool:
        return (
            self.max_workers > 1
            and inputs.nbytes >= self.share_inputs_min_bytes
        )

    def publish_inputs(self, inputs: np.ndarray) -> _SharedInput | None:
        """Publish once per distinct matrix; reuse the segment afterwards.

        Keyed by content digest (plus shape/dtype), so every batch over
        the same fixed inputs — the common sweep shape — shares a single
        machine-wide copy, and warm workers keep their attachment from
        one batch to the next.
        """
        if not self.wants_shared_inputs(inputs):
            return None
        with self._lock:
            if self._closed:
                raise RuntimeError("WorkerPool is closed")
            digest = self._digest_cache.digest(inputs)
            cached = self._segments.get(digest)
            if cached is None:
                cached = _create_shared_segment(inputs)
                self._segments[digest] = cached
            return cached[1]

    def release_inputs(self, handle: _SharedInput) -> None:
        """Per-batch no-op: warm segments live until the pool closes."""

    # -- teardown -------------------------------------------------------
    def close(self) -> None:
        """Shut workers down and unlink every published shared segment."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._cancel_reap_timer()
            pool, self._pool = self._pool, None
            segments = self._take_segments()
        if pool is not None:
            pool.shutdown(wait=True)
        self._release_segments(segments)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
