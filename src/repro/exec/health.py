"""Worker liveness, failure telemetry, and retry policy for the fleet.

The failure model of :mod:`repro.exec.distributed` (see
``docs/robustness.md``) needs three pieces of machinery that are
independent of sockets and therefore live here, testable in isolation:

* :class:`WorkerHealth` / :class:`HealthBoard` — the per-worker liveness
  state machine ``healthy → suspect → dead``, driven by heartbeat probes
  and per-chunk transport failures.  A *hung* worker (one that accepts
  connections but never answers — a wedged process, a silent partition)
  is flagged within the configured suspect window instead of being
  discovered only when its socket finally dies;
* :class:`ErrorTelemetry` — thread-safe per-worker error counters.  The
  executor records every swallowed-but-handled failure (connect refusal,
  transport error, chunk timeout, heartbeat miss, release failure) here,
  so "how broken is my fleet" is a counter read, never a log grep — and
  nothing is silently discarded;
* :class:`RetryPolicy` — bounded exponential backoff whose jitter is
  **deterministic**, derived from a seed via the sanctioned
  :func:`~repro.core.randomness.expand_seed` helper.  Retry timing is
  therefore replayable and can never perturb results (which are seeded
  per-trial and independent of scheduling anyway — the policy keeps the
  *schedule* itself reproducible under a pinned fault plan).

:class:`FleetDegradedWarning` is the loud face of graceful degradation,
mirroring :class:`~repro.core.errors.BatchFallbackWarning`: whenever a
distributed or pooled backend falls back to local serial execution, it
warns with this type and bumps a counter — results stay bit-identical to
:class:`~repro.core.engine.SerialExecutor`, only the parallelism is
lost, and monitors can alert on the counter.

>>> board = HealthBoard(suspect_after=1, dead_after=3)
>>> board.record_miss(("10.0.0.5", 9123), reason="heartbeat")
'suspect'
>>> board.record_miss(("10.0.0.5", 9123), reason="heartbeat")
'suspect'
>>> board.record_miss(("10.0.0.5", 9123), reason="heartbeat")
'dead'
>>> board.record_ok(("10.0.0.5", 9123))  # a dead worker may come back
'healthy'
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Hashable, Mapping

import numpy as np

from ..core.randomness import expand_seed
from ..obs.metrics import MetricsRegistry
from ..obs.recorder import FlightRecorder

__all__ = [
    "HEALTHY",
    "SUSPECT",
    "DEAD",
    "FleetDegradedWarning",
    "WorkerTimeoutError",
    "WorkerHealth",
    "HealthBoard",
    "ERRORS_METRIC",
    "ErrorTelemetry",
    "RetryPolicy",
]

#: Liveness states, in degradation order.
HEALTHY = "healthy"
SUSPECT = "suspect"
DEAD = "dead"


class FleetDegradedWarning(RuntimeWarning):
    """A fleet backend degraded to local serial execution — loudly.

    Emitted (with the reason in the message) exactly when
    :class:`~repro.exec.distributed.DistributedExecutor` runs leftover
    chunks locally because no worker is reachable, or when
    :class:`~repro.exec.pool.WorkerPool` gives up on a twice-broken
    process pool and runs the batch in-process.  Results are still
    bit-identical to :class:`~repro.core.engine.SerialExecutor` — only
    the parallelism is lost.  Python's default warning filters display
    repeated warnings from one call site only once, so monitors should
    read the paired counters (``DistributedExecutor.degraded_maps``,
    ``WorkerPool.degraded_batches``), which count every degradation
    exactly.
    """


class WorkerTimeoutError(ConnectionError):
    """A worker exceeded ``task_timeout`` answering one chunk.

    Raised by the executor's link layer when the per-chunk deadline
    expires; the chunk is requeued to a surviving lane like any other
    transport failure, and the miss lands in the executor's telemetry
    under the ``"timeout"`` category.
    """


@dataclass
class WorkerHealth:
    """One worker's liveness record: state, miss streak, transitions.

    The state machine is deliberately tiny: consecutive misses promote
    ``healthy → suspect`` after ``suspect_after`` misses and
    ``suspect → dead`` after ``dead_after``; any success resets to
    ``healthy`` (a worker that answers is alive, whatever its history).
    ``transitions`` records every state change as ``(old, new, reason)``
    so a postmortem can see *why* a worker was declared dead.
    """

    state: str = HEALTHY
    misses: int = 0
    probes: int = 0
    transitions: list[tuple[str, str, str]] = field(default_factory=list)

    def _move(self, new_state: str, reason: str) -> None:
        if new_state != self.state:
            self.transitions.append((self.state, new_state, reason))
            self.state = new_state

    def record_ok(self) -> str:
        """A successful probe or chunk: reset to healthy."""
        self.probes += 1
        self.misses = 0
        self._move(HEALTHY, "responded")
        return self.state

    def record_miss(self, suspect_after: int, dead_after: int, reason: str) -> str:
        """A missed probe / failed chunk; returns the (new) state."""
        self.probes += 1
        self.misses += 1
        if self.misses >= dead_after:
            self._move(DEAD, reason)
        elif self.misses >= suspect_after:
            self._move(SUSPECT, reason)
        return self.state

    def mark_dead(self, reason: str) -> str:
        """Unconditionally declare the worker dead (e.g. lane exhausted)."""
        self._move(DEAD, reason)
        return self.state


class HealthBoard:
    """Thread-safe collection of :class:`WorkerHealth` records.

    Parameters
    ----------
    suspect_after:
        Consecutive misses before a healthy worker becomes *suspect*
        (the suspect window: with a heartbeat every ``interval`` seconds
        a hung worker is flagged within
        ``suspect_after * interval + probe timeout``).
    dead_after:
        Consecutive misses before a suspect worker is declared *dead* —
        at which point the executor stops routing chunks to it and
        forcibly unblocks any feeder still waiting on its socket.
    recorder:
        Optional :class:`~repro.obs.recorder.FlightRecorder`; every
        state transition is recorded there as a ``health`` event, so a
        chaos-failure dump shows the liveness timeline alongside the
        fault plan.
    """

    def __init__(
        self,
        suspect_after: int = 1,
        dead_after: int = 3,
        recorder: "FlightRecorder | None" = None,
    ):
        if suspect_after < 1:
            raise ValueError("suspect_after must be >= 1")
        if dead_after < suspect_after:
            raise ValueError("dead_after must be >= suspect_after")
        self.suspect_after = suspect_after
        self.dead_after = dead_after
        self.recorder = recorder
        self._lock = threading.Lock()
        self._workers: dict[Hashable, WorkerHealth] = {}

    def _entry(self, worker: Hashable) -> WorkerHealth:
        # Caller holds the lock.
        entry = self._workers.get(worker)
        if entry is None:
            entry = self._workers[worker] = WorkerHealth()
        return entry

    def _transition(self, worker: Hashable, entry: WorkerHealth, before: str) -> str:
        # Caller holds the lock; records the transition outside it is
        # unnecessary — FlightRecorder has its own lock and never calls
        # back into the board.
        if self.recorder is not None and entry.state != before:
            old, new, reason = entry.transitions[-1]
            self.recorder.record(
                "health", worker=str(worker), old=old, new=new, reason=reason
            )
        return entry.state

    def record_ok(self, worker: Hashable) -> str:
        with self._lock:
            entry = self._entry(worker)
            before = entry.state
            entry.record_ok()
            return self._transition(worker, entry, before)

    def record_miss(self, worker: Hashable, reason: str = "miss") -> str:
        with self._lock:
            entry = self._entry(worker)
            before = entry.state
            entry.record_miss(self.suspect_after, self.dead_after, reason)
            return self._transition(worker, entry, before)

    def mark_dead(self, worker: Hashable, reason: str = "exhausted") -> str:
        with self._lock:
            entry = self._entry(worker)
            before = entry.state
            entry.mark_dead(reason)
            return self._transition(worker, entry, before)

    def state(self, worker: Hashable) -> str:
        """The worker's current state (unknown workers are healthy)."""
        with self._lock:
            entry = self._workers.get(worker)
            return entry.state if entry is not None else HEALTHY

    def is_dead(self, worker: Hashable) -> bool:
        return self.state(worker) == DEAD

    def snapshot(self) -> dict[Hashable, WorkerHealth]:
        """A point-in-time copy of every record (safe to inspect)."""
        with self._lock:
            return {
                worker: WorkerHealth(
                    state=entry.state,
                    misses=entry.misses,
                    probes=entry.probes,
                    transitions=list(entry.transitions),
                )
                for worker, entry in self._workers.items()
            }

    def transition_history(self) -> list[dict[str, str]]:
        """Every recorded state change, JSON-friendly and export-ready.

        Workers are sorted (by their string form) and each change is
        ``{"worker", "old", "new", "reason"}`` in occurrence order per
        worker — the same shape the flight recorder captures live.
        """
        with self._lock:
            items = [
                (str(worker), list(entry.transitions))
                for worker, entry in self._workers.items()
            ]
        history: list[dict[str, str]] = []
        for worker, transitions in sorted(items):
            history.extend(
                {"worker": worker, "old": old, "new": new, "reason": reason}
                for old, new, reason in transitions
            )
        return history


#: The registry series every :class:`ErrorTelemetry` records under;
#: ``python -m repro.obs.report`` builds its failure table from it.
ERRORS_METRIC = "exec_errors_total"


class ErrorTelemetry:
    """Per-worker, per-category error counters — the anti-silent-pass.

    Every failure the executor *handles* (rather than raises) must be
    recorded here, keyed by worker address and a short category string:
    ``"connect"`` (dial/handshake transport failures), ``"auth"``
    (a frame or handshake failed MAC verification — tampering, a replay,
    or a secret mismatch), ``"corrupt"`` (a frame passed its MAC but
    violated the schema — a peer-side encoder bug, not an attacker),
    ``"transport"`` (torn frames, resets, timeouts at the socket layer),
    ``"timeout"``, ``"heartbeat"``, ``"ping"``, ``"release"``,
    ``"close"``, ``"protocol"``.  Lint rule ``EXC03`` forbids the
    reason-less ``except: pass`` alternative in :mod:`repro.exec`.

    The counts live in a :class:`~repro.obs.metrics.MetricsRegistry` —
    a private one by default, or a shared one passed as ``registry`` so
    the fleet's failures export alongside every other metric — as the
    ``exec_errors_total{worker, category}`` counter family.  Worker
    addresses are any hashable (typically ``(host, port)`` tuples);
    this class keeps the label ↔ original-key mapping so
    :meth:`counts` still returns the exact keys callers recorded.
    """

    def __init__(self, registry: "MetricsRegistry | None" = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._lock = threading.Lock()
        #: worker label → the exact hashable key the caller used.
        self._keys: dict[str, Hashable] = {}

    @staticmethod
    def worker_label(worker: Hashable) -> str:
        """The registry label for a worker key (``host:port`` for pairs)."""
        if (
            isinstance(worker, tuple)
            and len(worker) == 2
            and isinstance(worker[0], str)
        ):
            return f"{worker[0]}:{worker[1]}"
        return str(worker)

    def record(self, worker: Hashable, category: str, n: int = 1) -> None:
        label = self.worker_label(worker)
        with self._lock:
            self._keys.setdefault(label, worker)
        self.registry.counter(ERRORS_METRIC, worker=label, category=category).inc(n)

    def counts(self) -> dict[Hashable, dict[str, int]]:
        """A copy of every counter: ``worker → {category → count}``."""
        with self._lock:
            keys = dict(self._keys)
        out: dict[Hashable, dict[str, int]] = {}
        for series in self.registry.series(ERRORS_METRIC):
            labels = series.labels
            worker = keys.get(labels["worker"])
            if worker is None:
                # A series this instance never recorded (shared registry,
                # or a restored dump): surface it under the label string.
                worker = labels["worker"]
            out.setdefault(worker, {})[labels["category"]] = series.snapshot_value()
        return out

    def total(self, category: "str | None" = None) -> int:
        """Total recorded errors, optionally restricted to one category."""
        if category is None:
            return int(self.registry.total(ERRORS_METRIC))
        return int(self.registry.total(ERRORS_METRIC, category=category))


class RetryPolicy:
    """Bounded exponential backoff with deterministic, seed-derived jitter.

    ``delay(attempt, lane)`` grows as ``base * 2**attempt`` (capped at
    ``cap``) and is scaled by a jitter factor in ``[0.5, 1.0]`` drawn
    from ``expand_seed(SeedSequence(seed, spawn_key=(lane, attempt)))`` —
    a pure function of ``(seed, lane, attempt)``, so two runs of the
    same fault schedule retry at the same instants.  Jitter still does
    its usual job: different lanes (and different seeds) de-synchronise,
    so a fleet-wide blip does not produce a reconnection stampede.

    >>> policy = RetryPolicy(seed=7, base=0.05, cap=1.0)
    >>> policy.delay(0, lane=0) == RetryPolicy(seed=7).delay(0, lane=0)
    True
    >>> 0.025 <= policy.delay(0, lane=0) <= 0.05
    True
    >>> policy.delay(5, lane=0) <= 1.0
    True
    """

    def __init__(self, seed: int = 0, base: float = 0.05, cap: float = 1.0):
        if base <= 0:
            raise ValueError("backoff base must be positive")
        if cap < base:
            raise ValueError("backoff cap must be >= base")
        self.seed = seed
        self.base = base
        self.cap = cap

    def delay(self, attempt: int, lane: int = 0) -> float:
        """Seconds to wait before retry number ``attempt`` (0-based)."""
        if attempt < 0:
            raise ValueError("attempt must be >= 0")
        exponential = min(self.cap, self.base * (2.0**attempt))
        rng = expand_seed(np.random.SeedSequence(self.seed, spawn_key=(lane, attempt)))
        jitter = 0.5 + 0.5 * float(rng.uniform())
        return exponential * jitter


def degradation_message(reason: str, detail: "Mapping[str, Any] | None" = None) -> str:
    """One consistent message shape for :class:`FleetDegradedWarning`."""
    if not detail:
        return reason
    extras = ", ".join(f"{key}={value}" for key, value in detail.items())
    return f"{reason} ({extras})"
