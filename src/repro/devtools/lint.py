"""``repro-lint`` — AST-based checks for repo-specific invariants.

Generic linters cannot know that ``np.random.default_rng()`` inside a
:class:`~repro.core.protocol.Protocol` subclass silently breaks the
engine's cross-backend bit-identical guarantee.  This module provides a
small rule framework over :mod:`ast` plus a CLI::

    PYTHONPATH=src python -m repro.devtools.lint src/repro

Exit status is 0 when no rule fires, 1 otherwise.  ``--report FILE``
additionally writes a JSON report (uploaded as a CI artifact so rule
regressions are diffable across runs).

Suppression
-----------
A finding is suppressed by an inline pragma **on the same line**, which
must carry a reason::

    rng = np.random.default_rng()  # repro-lint: disable=DET01 fixture noise

A pragma without a reason is itself reported (rule ``SUP01``): an
unexplained suppression is a future determinism bug with extra steps.

The rule catalog lives in :mod:`repro.devtools.rules`; rationale and
examples are documented in ``docs/correctness.md``.
"""

from __future__ import annotations

import argparse
import ast
import json
import re
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

__all__ = [
    "Finding",
    "LintRule",
    "SourceModule",
    "dotted_name",
    "lint_source",
    "lint_paths",
    "main",
]

#: ``# repro-lint: disable=DET01[, DET02] <reason>``
_PRAGMA = re.compile(
    r"#\s*repro-lint:\s*disable="
    r"(?P<rules>[A-Z]{2,6}\d{2}(?:\s*,\s*[A-Z]{2,6}\d{2})*)"
    r"(?P<reason>.*)$"
)

#: A line only *attempts* a pragma when a comment-prefixed ``repro-lint``
#: marker appears (hash, optional space, tool name); prose that merely
#: mentions the tool name (docstrings, error messages) is not a pragma.
_PRAGMA_TRIGGER = re.compile(r"#\s*repro-lint\b")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_json(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, ``None`` for anything else.

    The workhorse of every rule: lets a rule match calls like
    ``np.random.default_rng`` textually without type inference.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class SourceModule:
    """One parsed module: AST, source lines, and suppression pragmas."""

    def __init__(self, path: str, source: str):
        #: POSIX-style path; rules match allowlists against its suffix.
        self.path = str(path).replace("\\", "/")
        self.source = source
        self.tree = ast.parse(source, filename=self.path)
        self.lines = source.splitlines()
        #: line number → rule ids disabled on that line
        self.suppressions: dict[int, set[str]] = {}
        #: findings produced while parsing pragmas (malformed pragmas)
        self.pragma_findings: list[Finding] = []
        self._scan_pragmas()

    def _scan_pragmas(self) -> None:
        for lineno, text in enumerate(self.lines, start=1):
            trigger = _PRAGMA_TRIGGER.search(text)
            if trigger is None:
                continue
            match = _PRAGMA.search(text)
            if match is None:
                self.pragma_findings.append(
                    Finding(
                        "SUP01",
                        self.path,
                        lineno,
                        trigger.start(),
                        "malformed repro-lint pragma (expected "
                        "'# repro-lint: disable=RULE01 <reason>')",
                    )
                )
                continue
            rules = {r.strip() for r in match.group("rules").split(",")}
            if not match.group("reason").strip():
                self.pragma_findings.append(
                    Finding(
                        "SUP01",
                        self.path,
                        lineno,
                        match.start(),
                        "suppression pragma must state a reason after the "
                        "rule id",
                    )
                )
                continue
            self.suppressions.setdefault(lineno, set()).update(rules)

    def suppressed(self, finding: Finding) -> bool:
        return finding.rule in self.suppressions.get(finding.line, set())


class LintRule:
    """Base class for rules.  Subclasses set the metadata and ``check``."""

    id: str = "XX00"
    title: str = ""
    rationale: str = ""

    def check(self, module: SourceModule) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: SourceModule, node: ast.AST, message: str) -> Finding:
        return Finding(
            self.id,
            module.path,
            getattr(node, "lineno", 0),
            getattr(node, "col_offset", 0),
            message,
        )


def _default_rules() -> "list[LintRule]":
    from .rules import all_rules

    return all_rules()


def lint_module(
    module: SourceModule, rules: "Sequence[LintRule] | None" = None
) -> list[Finding]:
    """All unsuppressed findings for one parsed module."""
    findings = list(module.pragma_findings)
    for rule in rules if rules is not None else _default_rules():
        for finding in rule.check(module):
            if not module.suppressed(finding):
                findings.append(finding)
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return findings


def lint_source(
    source: str,
    path: str = "<string>",
    rules: "Sequence[LintRule] | None" = None,
) -> list[Finding]:
    """Lint a source string (the test suite's entry point)."""
    return lint_module(SourceModule(path, source), rules)


def _iter_python_files(paths: Iterable[str]) -> Iterator[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path
        else:
            raise FileNotFoundError(f"not a python file or directory: {raw}")


def lint_paths(
    paths: Iterable[str], rules: "Sequence[LintRule] | None" = None
) -> tuple[list[Finding], int]:
    """Lint files/trees; returns ``(findings, files_checked)``.

    A file that fails to parse contributes one ``LNT00`` finding rather
    than aborting the run — the linter must degrade per-file.
    """
    if rules is None:
        rules = _default_rules()
    findings: list[Finding] = []
    n_files = 0
    for file_path in _iter_python_files(paths):
        n_files += 1
        text = file_path.read_text(encoding="utf-8")
        try:
            module = SourceModule(str(file_path), text)
        except SyntaxError as exc:
            findings.append(
                Finding(
                    "LNT00",
                    str(file_path).replace("\\", "/"),
                    exc.lineno or 0,
                    exc.offset or 0,
                    f"file does not parse: {exc.msg}",
                )
            )
            continue
        findings.extend(lint_module(module, rules))
    return findings, n_files


def _write_report(report_path: str, findings: list[Finding], n_files: int) -> None:
    counts: dict[str, int] = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    payload = {
        "version": 1,
        "files_checked": n_files,
        "counts": dict(sorted(counts.items())),
        "findings": [f.to_json() for f in findings],
    }
    Path(report_path).write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )


def main(argv: "Sequence[str] | None" = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description="Check repo-specific determinism & concurrency invariants.",
    )
    parser.add_argument("paths", nargs="*", default=["src/repro"])
    parser.add_argument(
        "--report",
        metavar="FILE",
        help="also write a JSON report (the CI artifact)",
    )
    parser.add_argument(
        "--rules",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog"
    )
    args = parser.parse_args(argv)

    rules = _default_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.id}  {rule.title}")
        return 0
    if args.rules:
        wanted = {r.strip() for r in args.rules.split(",")}
        unknown = wanted - {rule.id for rule in rules}
        if unknown:
            parser.error(f"unknown rule ids: {', '.join(sorted(unknown))}")
        rules = [rule for rule in rules if rule.id in wanted]

    findings, n_files = lint_paths(args.paths, rules)
    for finding in findings:
        print(finding.format())
    if args.report:
        _write_report(args.report, findings, n_files)
    status = "clean" if not findings else f"{len(findings)} finding(s)"
    print(f"repro-lint: {status} in {n_files} file(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
