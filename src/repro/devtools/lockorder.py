"""Runtime lock-order cycle detection — a pure-python TSan-lite.

Deadlocks need two ingredients: locks held while taking other locks, and
two threads doing so in opposite orders.  The second ingredient almost
never shows up in a test run (the interleaving is rare by nature), but
the *order inversion* that enables it shows up every time the code paths
execute at all.  :class:`LockOrderMonitor` exploits that: it wraps every
lock the repo creates, records a directed edge ``held → acquired``
whenever a thread takes a lock while holding another, and at the end of
the test session checks the accumulated lock-order graph for cycles.  A
cycle is a deadlock waiting for the right interleaving — reported with
the acquisition stacks that created each edge, even though the run
itself never hung.

Installation monkeypatches the ``threading.Lock`` / ``threading.RLock``
/ ``threading.Condition`` factories.  Only locks created *by repro
code* are instrumented: the factory inspects the caller's module name
and leaves stdlib machinery (``concurrent.futures``, ``queue``,
``threading.Timer`` internals, …) on native primitives, so the overhead
and the graph stay scoped to the code under audit.  The exec test suite
installs the monitor session-wide via ``tests/exec/conftest.py``.

>>> monitor = LockOrderMonitor()
>>> monitor.install()
>>> try:
...     import threading
...     a, b = threading.Lock(), threading.Lock()  # wrapped: repro caller?
... finally:
...     monitor.uninstall()
>>> monitor.assert_no_cycles()  # no nesting happened: trivially clean
"""

from __future__ import annotations

import sys
import threading
import traceback
from typing import Any, Callable, Iterator

__all__ = ["LockOrderError", "LockOrderMonitor", "TrackedLock"]

_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock
_REAL_CONDITION = threading.Condition


class LockOrderError(AssertionError):
    """A cycle exists in the recorded lock-order graph."""


def _call_site(depth: int) -> str:
    frame = sys._getframe(depth)
    return f"{frame.f_code.co_filename}:{frame.f_lineno}"


class TrackedLock:
    """A lock/RLock proxy reporting acquisitions to its monitor.

    Supports the full lock protocol (``acquire``/``release``, context
    manager, ``locked``) plus the private hooks ``threading.Condition``
    needs (``_release_save`` / ``_acquire_restore`` / ``_is_owned``), so
    a tracked lock can back a condition variable transparently.
    """

    __slots__ = ("_inner", "_monitor", "uid", "site", "reentrant")

    def __init__(
        self,
        inner: Any,
        monitor: "LockOrderMonitor",
        uid: int,
        site: str,
        reentrant: bool,
    ):
        self._inner = inner
        self._monitor = monitor
        self.uid = uid
        self.site = site
        self.reentrant = reentrant

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._monitor._note_acquired(self)
        return acquired

    def release(self) -> None:
        self._monitor._note_released(self)
        self._inner.release()

    def locked(self) -> bool:
        inner_locked = getattr(self._inner, "locked", None)
        if inner_locked is not None:
            return bool(inner_locked())
        # RLock before 3.12 has no locked(); probe non-blockingly.
        if self._inner.acquire(False):
            self._inner.release()
            return False
        return True

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    # -- threading.Condition integration --------------------------------
    def _release_save(self) -> Any:
        self._monitor._note_released(self, fully=True)
        saver = getattr(self._inner, "_release_save", None)
        if saver is not None:
            return saver()
        self._inner.release()
        return None

    def _acquire_restore(self, state: Any) -> None:
        restorer = getattr(self._inner, "_acquire_restore", None)
        if restorer is not None:
            restorer(state)
        else:
            self._inner.acquire()
        self._monitor._note_acquired(self, restored=state)

    def _is_owned(self) -> bool:
        owned = getattr(self._inner, "_is_owned", None)
        if owned is not None:
            return bool(owned())
        if self._inner.acquire(False):
            self._inner.release()
            return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "RLock" if self.reentrant else "Lock"
        return f"Tracked{kind}(uid={self.uid}, created at {self.site})"


class _HeldState(threading.local):
    """Per-thread acquisition state: lock uids in order, with counts."""

    def __init__(self) -> None:
        self.stack: list[int] = []
        self.counts: dict[int, int] = {}


class LockOrderMonitor:
    """Records the process-wide lock-order graph of repro-created locks.

    Parameters
    ----------
    module_prefixes:
        Locks are instrumented only when ``threading.Lock()`` (or RLock /
        Condition) is called from a module whose ``__name__`` starts with
        one of these prefixes.  Defaults to ``("repro.",)`` — the code
        under audit — leaving stdlib internals on native primitives.
    """

    def __init__(self, module_prefixes: tuple[str, ...] = ("repro.",)):
        self.module_prefixes = tuple(module_prefixes)
        #: guards _edges/_sites/_next_uid; a *native* lock — the monitor
        #: must never instrument itself.
        self._meta = _REAL_LOCK()
        #: (held uid, acquired uid) → human-readable first-seen evidence
        self._edges: dict[tuple[int, int], str] = {}
        #: uid → creation site of the lock
        self._sites: dict[int, str] = {}
        self._next_uid = 1
        self._held = _HeldState()
        self._installed = False

    # -- monkeypatching ---------------------------------------------------
    def _should_track(self) -> bool:
        caller = sys._getframe(2).f_globals.get("__name__", "")
        return isinstance(caller, str) and caller.startswith(
            self.module_prefixes
        )

    def _new_tracked(self, inner: Any, reentrant: bool, site: str) -> TrackedLock:
        with self._meta:
            uid = self._next_uid
            self._next_uid += 1
            self._sites[uid] = site
        return TrackedLock(inner, self, uid, site, reentrant)

    def install(self) -> None:
        """Patch the ``threading`` lock factories (idempotence guarded)."""
        if self._installed:
            raise RuntimeError("LockOrderMonitor is already installed")

        def make_lock() -> Any:
            if self._should_track():
                return self._new_tracked(_REAL_LOCK(), False, _call_site(2))
            return _REAL_LOCK()

        def make_rlock() -> Any:
            if self._should_track():
                return self._new_tracked(_REAL_RLOCK(), True, _call_site(2))
            return _REAL_RLOCK()

        def make_condition(lock: Any = None) -> Any:
            if lock is None and self._should_track():
                lock = self._new_tracked(_REAL_RLOCK(), True, _call_site(2))
            return _REAL_CONDITION(lock)

        threading.Lock = make_lock  # type: ignore[assignment]
        threading.RLock = make_rlock  # type: ignore[assignment]
        threading.Condition = make_condition  # type: ignore[assignment, misc]
        self._installed = True

    def uninstall(self) -> None:
        """Restore the native factories (already-created wrappers keep
        delegating; their recording is harmless after the session)."""
        if not self._installed:
            return
        threading.Lock = _REAL_LOCK  # type: ignore[assignment]
        threading.RLock = _REAL_RLOCK  # type: ignore[assignment]
        threading.Condition = _REAL_CONDITION  # type: ignore[assignment, misc]
        self._installed = False

    # -- event recording --------------------------------------------------
    def _note_acquired(self, lock: TrackedLock, restored: Any = None) -> None:
        held = self._held
        count = held.counts.get(lock.uid, 0)
        if count and lock.reentrant:
            # Reentrant re-acquisition adds no ordering information.
            held.counts[lock.uid] = count + 1
            return
        new_edges = [
            (uid, lock.uid)
            for uid in held.counts
            if uid != lock.uid and (uid, lock.uid) not in self._edges
        ]
        if new_edges:
            stack = "".join(traceback.format_stack(sys._getframe(2), limit=6))
            with self._meta:
                for edge in new_edges:
                    self._edges.setdefault(
                        edge,
                        f"thread {threading.current_thread().name!r} "
                        f"acquired {self._describe(edge[1])} while holding "
                        f"{self._describe(edge[0])}:\n{stack}",
                    )
        held.counts[lock.uid] = count + 1
        held.stack.append(lock.uid)

    def _note_released(self, lock: TrackedLock, fully: bool = False) -> None:
        held = self._held
        count = held.counts.get(lock.uid, 0)
        if count == 0:
            return  # released by a thread the monitor never saw acquire
        count = 0 if fully else count - 1
        if count:
            held.counts[lock.uid] = count
        else:
            held.counts.pop(lock.uid, None)
            for index in range(len(held.stack) - 1, -1, -1):
                if held.stack[index] == lock.uid:
                    del held.stack[index]
                    break

    def _describe(self, uid: int) -> str:
        return f"lock#{uid} (created at {self._sites.get(uid, '?')})"

    # -- graph queries -----------------------------------------------------
    def edges(self) -> dict[tuple[int, int], str]:
        """A snapshot of the recorded order graph (edge → evidence)."""
        with self._meta:
            return dict(self._edges)

    def find_cycle(self) -> "list[int] | None":
        """Some cycle in the order graph as a uid list, or ``None``."""
        edges = self.edges()
        adjacency: dict[int, list[int]] = {}
        for source, target in edges:
            adjacency.setdefault(source, []).append(target)
        WHITE, GRAY, BLACK = 0, 1, 2
        color: dict[int, int] = {}
        parent: dict[int, int] = {}

        def dfs(root: int) -> "list[int] | None":
            stack: list[tuple[int, Iterator[int]]] = [
                (root, iter(adjacency.get(root, ())))
            ]
            color[root] = GRAY
            while stack:
                node, children = stack[-1]
                advanced = False
                for child in children:
                    if color.get(child, WHITE) == GRAY:
                        cycle = [child, node]
                        walker = node
                        while walker != child:
                            walker = parent[walker]
                            cycle.append(walker)
                        cycle.reverse()
                        return cycle
                    if color.get(child, WHITE) == WHITE:
                        color[child] = GRAY
                        parent[child] = node
                        stack.append((child, iter(adjacency.get(child, ()))))
                        advanced = True
                        break
                if not advanced:
                    color[node] = BLACK
                    stack.pop()
            return None

        for node in adjacency:
            if color.get(node, WHITE) == WHITE:
                cycle = dfs(node)
                if cycle is not None:
                    return cycle
        return None

    def assert_no_cycles(self) -> None:
        """Raise :class:`LockOrderError` when an order inversion exists."""
        cycle = self.find_cycle()
        if cycle is None:
            return
        edges = self.edges()
        lines = [
            "lock-order cycle detected (a deadlock awaiting the right "
            "interleaving):",
            " -> ".join(self._describe(uid) for uid in cycle + cycle[:1]),
            "",
        ]
        for source, target in zip(cycle, cycle[1:] + cycle[:1]):
            evidence = edges.get((source, target))
            if evidence:
                lines.append(evidence)
        raise LockOrderError("\n".join(lines))


def install_for_tests(
    module_prefixes: tuple[str, ...] = ("repro.",),
) -> Callable[[], None]:
    """Convenience used by conftest fixtures: install, return a finalizer
    that uninstalls and asserts the graph is acyclic."""
    monitor = LockOrderMonitor(module_prefixes)
    monitor.install()

    def finalize() -> None:
        monitor.uninstall()
        monitor.assert_no_cycles()

    return finalize
