"""Developer tooling: static and runtime checks for the repo's invariants.

Every correctness claim this repo makes — bit-identical results across
the Serial/Parallel/WorkerPool/Distributed backends, exactly-once
published-input frames, resumable sweeps — rests on invariants that are
easy to break silently:

* trial code must draw randomness only from engine-spawned generators
  (never ambient ``np.random`` / ``random`` state);
* :class:`~repro.core.engine.RunSpec` and
  :class:`~repro.core.engine.BatchResult` are frozen records;
* ``supports_batch`` / ``batch_decisions`` (and the ``_keys`` pair) must
  be declared together;
* worker frames are unpickled only inside the quarantined
  :mod:`repro.exec.wire` module;
* locks in :mod:`repro.exec` are acquired via context managers, in a
  globally consistent order.

This package checks those invariants *before* the conformance suite can
catch a wrong number:

* :mod:`repro.devtools.lint` — an AST-based linter with repo-specific
  rules (``python -m repro.devtools.lint src/repro``);
* :mod:`repro.devtools.lockorder` — a runtime lock-order cycle detector
  ("TSan-lite") that the exec test suite runs under.

See ``docs/correctness.md`` for the rule catalog and suppression syntax.
"""

from .lint import Finding, lint_paths, lint_source
from .lockorder import LockOrderError, LockOrderMonitor

__all__ = [
    "Finding",
    "lint_paths",
    "lint_source",
    "LockOrderError",
    "LockOrderMonitor",
]
