"""BAT01/BAT02 — the vectorized fast-path contract must be declared whole.

The engine's ``vectorized=True`` fast path dispatches on
``supports_batch`` / ``supports_batch_keys`` *flags* and calls the
``batch_decisions`` / ``batch_keys`` *methods*.  The failure modes are
asymmetric and both silent-ish:

* flag set, method missing → every vectorized batch falls back to scalar
  simulation (correct numbers, silently forfeited speedup) or raises at
  dispatch, depending on how the method is missing;
* method implemented, flag unset → the fast path never runs, and the
  batched implementation rots untested (the exact class of bug PR 5
  fixed by hand in the key-synthesis pairs).

BAT02 extends the contract to the symbolic cost layer: the vectorized
path *synthesizes* its ``CostReport`` from transcript-key lengths instead
of measuring it, and the only gate on that synthesis is the cost-model
conformance matrix — which needs a ``cost_model()``.  A batched protocol
without a model ships unverifiable synthesized costs; a protocol with a
model but no batch contract never has that model exercised against the
fast path it exists to certify.
"""

from __future__ import annotations

import ast
from typing import Callable, Iterator

from ..lint import Finding, LintRule, SourceModule
from . import base_names, trial_path_classes

__all__ = ["BatchContractRule", "CostModelContractRule"]

_PAIRS = (
    ("supports_batch", "batch_decisions"),
    ("supports_batch_keys", "batch_keys"),
)
_CONTRACT_NAMES = {name for pair in _PAIRS for name in pair}
#: Methods tracked through inheritance chains (BAT01 pairs + BAT02's
#: cost-model leg).
_METHOD_NAMES = {"batch_decisions", "batch_keys", "cost_model"}


def _own_flags(cls: ast.ClassDef) -> dict[str, "bool | None"]:
    """Flag assignments in the class body: name → constant value.

    Non-constant assignments map to ``None`` (unknown — never flagged)."""
    flags: dict[str, "bool | None"] = {}
    for stmt in cls.body:
        if isinstance(stmt, ast.Assign):
            names = [t.id for t in stmt.targets if isinstance(t, ast.Name)]
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            names = [stmt.target.id] if isinstance(stmt.target, ast.Name) else []
            value = stmt.value
        else:
            continue
        for name in names:
            if name in {"supports_batch", "supports_batch_keys"}:
                if isinstance(value, ast.Constant) and isinstance(value.value, bool):
                    flags[name] = value.value
                else:
                    flags[name] = None
    return flags


def _is_abstract_stub(fn: ast.FunctionDef) -> bool:
    """True for bodies that just raise NotImplementedError (the base-class
    stub pattern) — declaring the contract, not implementing it."""
    body = [
        stmt
        for stmt in fn.body
        if not (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and isinstance(stmt.value.value, str)
        )
    ]
    if len(body) != 1 or not isinstance(body[0], ast.Raise):
        return False
    exc = body[0].exc
    if isinstance(exc, ast.Call):
        exc = exc.func
    return isinstance(exc, ast.Name) and exc.id == "NotImplementedError"


def _own_methods(cls: ast.ClassDef) -> dict[str, ast.FunctionDef]:
    return {
        stmt.name: stmt
        for stmt in cls.body
        if isinstance(stmt, ast.FunctionDef)
        and stmt.name in _METHOD_NAMES
        and not _is_abstract_stub(stmt)
    }


class BatchContractRule(LintRule):
    """BAT01 — supports_batch* iff the matching batch_* method exists."""

    id = "BAT01"
    title = "supports_batch*/batch_* must be declared together"
    rationale = (
        "a flag without its method breaks vectorized dispatch; a method "
        "without its flag never runs and rots untested."
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        classes = [
            n for n in ast.walk(module.tree) if isinstance(n, ast.ClassDef)
        ]
        by_name = {cls.name: cls for cls in classes}
        for cls in classes:
            # Only examine classes that participate in the contract at
            # all — a class that mentions neither flag nor method has
            # nothing to pair.
            own_flags = _own_flags(cls)
            own_methods = _own_methods(cls)
            if not own_flags and not own_methods:
                continue
            effective_flags, effective_methods = self._resolve_chain(
                cls, by_name
            )
            for flag_name, method_name in _PAIRS:
                flag = effective_flags.get(flag_name)
                has_method = method_name in effective_methods
                if flag is True and not has_method:
                    yield self.finding(
                        module,
                        cls,
                        f"{cls.name} sets {flag_name}=True but neither it "
                        f"nor an in-module ancestor implements "
                        f"{method_name}()",
                    )
                if (
                    method_name in own_methods
                    and flag is not True
                    and not self._flagged_descendant(cls, by_name, flag_name)
                ):
                    yield self.finding(
                        module,
                        own_methods[method_name],
                        f"{cls.name} implements {method_name}() but "
                        f"{flag_name} is not set to True — the engine "
                        "will never dispatch to it",
                    )

    @classmethod
    def _flagged_descendant(
        cls,
        base: ast.ClassDef,
        by_name: dict[str, ast.ClassDef],
        flag_name: str,
    ) -> bool:
        """True when an in-module subclass of ``base`` resolves the flag
        to True — ``base`` is then a shared-implementation mixin whose
        method IS dispatched, through that subclass."""
        for other in by_name.values():
            if other.name == base.name:
                continue
            flags, _ = cls._resolve_chain(other, by_name)
            if flags.get(flag_name) is not True:
                continue
            # Walk other's chain to see whether it passes through base.
            seen: set[str] = set()
            current: "ast.ClassDef | None" = other
            while current is not None and current.name not in seen:
                seen.add(current.name)
                if current.name == base.name:
                    return True
                current = next(
                    (
                        by_name[b]
                        for b in base_names(current)
                        if b in by_name
                    ),
                    None,
                )
        return False

    @staticmethod
    def _resolve_chain(
        cls: ast.ClassDef, by_name: dict[str, ast.ClassDef]
    ) -> tuple[dict[str, "bool | None"], set[str]]:
        """Flags/methods effective on ``cls``, following in-module bases
        (nearest definition wins, single-inheritance approximation)."""
        flags: dict[str, "bool | None"] = {}
        methods: set[str] = set()
        seen: set[str] = set()
        current: "ast.ClassDef | None" = cls
        while current is not None and current.name not in seen:
            seen.add(current.name)
            for name, value in _own_flags(current).items():
                flags.setdefault(name, value)
            methods.update(_own_methods(current))
            current = next(
                (
                    by_name[base]
                    for base in base_names(current)
                    if base in by_name
                ),
                None,
            )
        return flags, methods


def _descendant_provides(
    base: ast.ClassDef,
    by_name: dict[str, ast.ClassDef],
    predicate: Callable[[ast.ClassDef], bool],
) -> bool:
    """True when some in-module subclass of ``base`` satisfies
    ``predicate`` — ``base`` is then a shared mixin completed downstream."""
    for other in by_name.values():
        if other.name == base.name:
            continue
        seen: set[str] = set()
        current: "ast.ClassDef | None" = other
        through_base = False
        while current is not None and current.name not in seen:
            seen.add(current.name)
            if current.name == base.name:
                through_base = True
                break
            current = next(
                (by_name[b] for b in base_names(current) if b in by_name),
                None,
            )
        if through_base and predicate(other):
            return True
    return False


class CostModelContractRule(LintRule):
    """BAT02 — batch_decisions() and cost_model() must travel together."""

    id = "BAT02"
    title = "batched protocols must declare a cost_model (and vice versa)"
    rationale = (
        "vectorized costs are synthesized, not measured — only the "
        "cost-model conformance matrix verifies them, and it needs "
        "cost_model(); a model without a batch contract never meets the "
        "fast path it certifies."
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        protocols = {
            cls.name: cls
            for cls in trial_path_classes(module)
        }
        by_name = {
            n.name: n
            for n in ast.walk(module.tree)
            if isinstance(n, ast.ClassDef)
        }

        def chain_has_batch(cls: ast.ClassDef) -> bool:
            flags, methods = BatchContractRule._resolve_chain(cls, by_name)
            return (
                "batch_decisions" in methods
                or flags.get("supports_batch") is True
            )

        def chain_has_model(cls: ast.ClassDef) -> bool:
            _, methods = BatchContractRule._resolve_chain(cls, by_name)
            return "cost_model" in methods

        for cls in protocols.values():
            own = _own_methods(cls)
            if "batch_decisions" in own and not (
                chain_has_model(cls)
                or _descendant_provides(cls, by_name, chain_has_model)
            ):
                yield self.finding(
                    module,
                    own["batch_decisions"],
                    f"{cls.name} implements batch_decisions() without a "
                    "cost_model() — its synthesized vectorized costs are "
                    "invisible to the cost-model conformance matrix",
                )
            if "cost_model" in own and not (
                chain_has_batch(cls)
                or _descendant_provides(cls, by_name, chain_has_batch)
            ):
                yield self.finding(
                    module,
                    own["cost_model"],
                    f"{cls.name} declares cost_model() but no batch "
                    "contract (batch_decisions or supports_batch=True) — "
                    "the model is never checked against the vectorized "
                    "fast path's synthesized costs",
                )
