"""Concurrency rules: EXC01 (pickle quarantine), EXC02 (lock discipline),
EXC03 (no silent exception swallows).

EXC01: ``pickle.loads`` executes arbitrary constructors.  The wire
protocol no longer uses pickle at all — :mod:`repro.exec.wire` decodes a
closed schema vocabulary and verifies a MAC before decoding — so the
historical "quarantined wire module" allowlist is now *empty*: no module
in the tree may deserialize pickle bytes, full stop.  (Sender-side
``pickle.dumps`` remains legal; process pools ship work that way, and
serializing is not an execution hazard.)

EXC02: every lock in :mod:`repro.exec` must be held via ``with`` so that
no exception path can leak a held lock (a leaked lock is a deadlock that
reproduces only under failure injection).  The runtime complement is
:mod:`repro.devtools.lockorder`, which checks acquisition *order*.

EXC03: an ``except:`` whose whole body is ``pass`` discards a failure
with no trace — the exact bug class the fault-injection harness exists
to surface (a swallowed transport error becomes silent wrong behaviour
under chaos).  Handled failures in :mod:`repro.exec` must do *something*
observable: record telemetry, return a sentinel, re-raise typed.  A
handler that genuinely must ignore (and can say why) carries a
same-line ``# repro-lint: disable=EXC03 <reason>`` pragma.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..lint import Finding, LintRule, SourceModule, dotted_name

__all__ = ["PickleQuarantineRule", "BareAcquireRule", "SilentExceptRule"]

#: Modules allowed to deserialize pickle bytes.  Historically this held
#: ``repro/exec/wire.py`` (the pickle-framed v1 protocol); the schema'd
#: v2 protocol needs no exemption, so the quarantine is now empty.
_WIRE_PATHS: tuple[str, ...] = ()

_PICKLE_LOADERS = {"loads", "load", "Unpickler"}


class PickleQuarantineRule(LintRule):
    """EXC01 — no pickle deserialization anywhere in the tree."""

    id = "EXC01"
    title = "no pickle.loads anywhere (the wire protocol is schema'd)"
    rationale = (
        "unpickling executes arbitrary code; the wire protocol decodes "
        "a closed schema vocabulary behind a frame MAC instead, so no "
        "module has any business calling a pickle loader.  A stray "
        "loads reopens the remote-code-execution hole the schema "
        "protocol closed."
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if _WIRE_PATHS and module.path.endswith(_WIRE_PATHS):
            return
        pickle_roots = {"pickle"}
        from_imports: set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name in {"pickle", "cPickle"}:
                        pickle_roots.add(alias.asname or alias.name)
            elif isinstance(node, ast.ImportFrom) and node.module == "pickle":
                for alias in node.names:
                    if alias.name in _PICKLE_LOADERS:
                        from_imports.add(alias.asname or alias.name)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            root, _, attr = name.partition(".")
            is_loader = (root in pickle_roots and attr in _PICKLE_LOADERS) or (
                "." not in name and name in from_imports
            )
            if is_loader:
                yield self.finding(
                    module,
                    node,
                    f"{name}() deserializes arbitrary code — use the "
                    "schema codec in repro.exec.wire instead",
                )


class BareAcquireRule(LintRule):
    """EXC02 — locks in repro.exec are held via context managers only."""

    id = "EXC02"
    title = "no bare lock.acquire()/release() in repro.exec"
    rationale = (
        "a bare acquire/release pair leaks the lock on any exception "
        "path between them; `with lock:` cannot.  The lock-order "
        "checker (repro.devtools.lockorder) assumes balanced "
        "acquisition, which `with` guarantees."
    )

    #: Only the executor layer is in scope: its locks guard cross-thread
    #: state (schedulers, pools, publication tables) where a leak hangs
    #: a whole batch.
    _SCOPE = "repro/exec/"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if self._SCOPE not in module.path:
            return
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in {"acquire", "release"}
            ):
                # Lock acquire/release is nullary (timeouts aside, which
                # `with` also covers); a call with positional arguments is
                # some other protocol (e.g. an input store's release(digest)).
                if node.args or node.keywords:
                    continue
                receiver = dotted_name(node.func.value) or "<lock>"
                yield self.finding(
                    module,
                    node,
                    f"bare {receiver}.{node.func.attr}() — hold locks via "
                    "'with lock:' so exception paths cannot leak them",
                )


class SilentExceptRule(LintRule):
    """EXC03 — no reason-less silent ``except: pass`` in repro.exec."""

    id = "EXC03"
    title = "no silent except-pass swallows in repro.exec"
    rationale = (
        "an except body of bare `pass` erases a failure with no "
        "telemetry, no sentinel, no trace — under fault injection that "
        "is exactly how a dead worker turns into silent wrong output.  "
        "Record the failure (ErrorTelemetry), return early, or re-raise "
        "typed; a handler that truly must ignore carries a same-line "
        "pragma stating why."
    )

    #: The executor layer only: its swallowed exceptions are transport
    #: and liveness failures that the robustness machinery must count.
    _SCOPE = "repro/exec/"

    @staticmethod
    def _is_silent(body: list[ast.stmt]) -> bool:
        if len(body) != 1:
            return False
        only = body[0]
        if isinstance(only, ast.Pass):
            return True
        # `...` as a statement is the same silence in different clothes.
        return (
            isinstance(only, ast.Expr)
            and isinstance(only.value, ast.Constant)
            and only.value.value is Ellipsis
        )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if self._SCOPE not in module.path:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_silent(node.body):
                continue
            caught = (
                dotted_name(node.type) if node.type is not None else None
            ) or "<bare>"
            yield self.finding(
                module,
                node,
                f"except {caught}: pass swallows the failure silently — "
                "record it (telemetry), handle it, or re-raise typed",
            )
