"""Determinism rules: DET01 (ambient randomness), DET02 (frozen specs).

The engine's cross-backend bit-identical guarantee holds because every
random draw in a trial flows from ``SeedSequence(seed).spawn(trials)``
— per-trial, location-independent seeding.  Code that reaches for
ambient randomness (``np.random.*`` module state, the stdlib ``random``
module, OS entropy via unseeded ``default_rng()``, wall-clock seeding)
silently re-introduces run-to-run and backend-to-backend divergence.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..lint import Finding, LintRule, SourceModule, dotted_name
from . import iter_calls_with_class, trial_path_classes

__all__ = ["AmbientRandomnessRule", "FrozenSpecMutationRule"]

#: Legacy numpy global-state draws (``np.random.<fn>``): all of these
#: read or mutate process-wide hidden state.
_NUMPY_LEGACY = {
    "rand",
    "randn",
    "randint",
    "random",
    "random_sample",
    "ranf",
    "sample",
    "choice",
    "shuffle",
    "permutation",
    "seed",
    "standard_normal",
    "normal",
    "uniform",
    "binomial",
    "poisson",
    "bytes",
    "get_state",
    "set_state",
}

#: Draw/seed functions of the stdlib ``random`` module.
_STDLIB_RANDOM = {
    "random",
    "randint",
    "randrange",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "seed",
    "uniform",
    "getrandbits",
    "randbytes",
    "gauss",
    "normalvariate",
    "betavariate",
    "expovariate",
}

#: Wall-clock sources that must never feed a seed.
_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
}

#: The module holding the sanctioned expansion helpers is the one place
#: allowed to construct generators directly.
_ALLOWED_PATHS = ("repro/core/randomness.py",)


class _ImportMap:
    """What this module's names mean: numpy roots, stdlib-random names."""

    def __init__(self, tree: ast.Module):
        self.numpy_roots: set[str] = set()
        #: names bound to the ``numpy.random`` submodule itself
        self.numpy_random_roots: set[str] = set()
        self.stdlib_random_roots: set[str] = set()
        #: local names imported ``from random import ...``
        self.stdlib_random_names: set[str] = set()
        self.time_roots: set[str] = set()
        self.time_names: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.partition(".")[0]
                    if alias.name == "numpy" or alias.name.startswith("numpy."):
                        if alias.name == "numpy.random" and alias.asname:
                            self.numpy_random_roots.add(alias.asname)
                        else:
                            self.numpy_roots.add(bound)
                    elif alias.name == "random":
                        self.stdlib_random_roots.add(bound)
                    elif alias.name == "time":
                        self.time_roots.add(bound)
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            self.numpy_random_roots.add(alias.asname or "random")
                elif node.module == "random":
                    for alias in node.names:
                        self.stdlib_random_names.add(alias.asname or alias.name)
                elif node.module == "time":
                    for alias in node.names:
                        self.time_names.add(alias.asname or alias.name)

    def numpy_random_tail(self, dotted: str) -> str | None:
        """``"default_rng"`` for ``np.random.default_rng`` etc., else None."""
        root, _, rest = dotted.partition(".")
        if root in self.numpy_roots and rest.startswith("random."):
            return rest.partition(".")[2]
        if root in self.numpy_random_roots and rest and "." not in rest:
            return rest
        return None

    def is_clock_call(self, call: ast.Call) -> bool:
        name = dotted_name(call.func)
        if name is None:
            return False
        root = name.partition(".")[0]
        if root in self.time_roots and name.partition(".")[2] in {
            tail.partition(".")[2] for tail in _CLOCK_CALLS
        }:
            return True
        return "." not in name and name in self.time_names


class AmbientRandomnessRule(LintRule):
    """DET01 — randomness must flow from engine-spawned generators."""

    id = "DET01"
    title = "no ambient randomness in trial paths"
    rationale = (
        "np.random module state, the stdlib random module, unseeded "
        "default_rng() and wall-clock seeding all break the engine's "
        "bit-identical cross-backend guarantee; protocols and "
        "distributions must expand seeds via repro.core.randomness."
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if module.path.endswith(_ALLOWED_PATHS):
            return
        imports = _ImportMap(module.tree)
        trial_classes = trial_path_classes(module)
        for call, enclosing in iter_calls_with_class(module):
            name = dotted_name(call.func)
            in_trial = enclosing in trial_classes
            if name is not None:
                yield from self._check_named_call(
                    module, call, name, imports, in_trial
                )
            yield from self._check_time_seeding(module, call, name, imports)

    def _check_named_call(
        self,
        module: SourceModule,
        call: ast.Call,
        name: str,
        imports: _ImportMap,
        in_trial: bool,
    ) -> Iterator[Finding]:
        tail = imports.numpy_random_tail(name)
        if tail in _NUMPY_LEGACY:
            yield self.finding(
                module,
                call,
                f"legacy global-state draw {name}() — use a Generator "
                "passed in by the engine",
            )
        elif tail in {"default_rng", "Generator"}:
            if in_trial:
                yield self.finding(
                    module,
                    call,
                    f"{name}() inside a Protocol/Distribution class — "
                    "expand drawn seeds via "
                    "repro.core.randomness.expand_seed instead",
                )
            elif tail == "default_rng" and not call.args and not call.keywords:
                yield self.finding(
                    module,
                    call,
                    f"unseeded {name}() draws OS entropy — thread a seeded "
                    "Generator through, or use "
                    "repro.core.randomness.fresh_generator at an "
                    "entry-point boundary",
                )
        root = name.partition(".")[0]
        if (
            root in imports.stdlib_random_roots
            and name.partition(".")[2] in _STDLIB_RANDOM
        ) or ("." not in name and name in imports.stdlib_random_names):
            yield self.finding(
                module,
                call,
                f"stdlib random call {name}() uses hidden global state — "
                "draw from a numpy Generator supplied by the engine",
            )

    def _check_time_seeding(
        self,
        module: SourceModule,
        call: ast.Call,
        name: "str | None",
        imports: _ImportMap,
    ) -> Iterator[Finding]:
        if name is None:
            return
        tail = imports.numpy_random_tail(name)
        is_seed_sink = tail in {"default_rng", "SeedSequence", "seed"} or (
            name.rpartition(".")[2] == "seed"
            and name.partition(".")[0] in imports.stdlib_random_roots
        )
        if not is_seed_sink:
            return
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            for sub in ast.walk(arg):
                if isinstance(sub, ast.Call) and imports.is_clock_call(sub):
                    yield self.finding(
                        module,
                        call,
                        "wall-clock-seeded generator is nondeterministic "
                        "by construction — derive seeds from the RunSpec",
                    )
                    return


#: Fields of the frozen records; assignment to them on a spec/result
#: value is a mutation the dataclass machinery would reject at runtime
#: only if attempted directly (object.__setattr__ bypasses it silently).
_RUNSPEC_FIELDS = {
    "protocol",
    "inputs",
    "distribution",
    "scheduler",
    "seed",
    "rounds",
    "private_bit_budget",
    "public_coins",
    "record_inputs",
    "record_transcripts",
    "vectorized",
}
_SPEC_NAMES = {"spec", "run_spec", "runspec"}
_RESULT_NAMES = {"batch", "result", "batch_result"}
_RESULT_FIELDS = {"trials"}


class FrozenSpecMutationRule(LintRule):
    """DET02 — RunSpec/BatchResult are frozen records."""

    id = "DET02"
    title = "no mutation of frozen RunSpec/BatchResult fields"
    rationale = (
        "resumable sweeps and the content-digest input cache assume a "
        "spec never changes after construction; object.__setattr__ "
        "bypasses the frozen-dataclass guard silently.  Use "
        "dataclasses.replace to derive a modified spec."
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        yield from self._check_setattr_bypass(module)
        yield from self._check_field_assignments(module)

    def _check_setattr_bypass(self, module: SourceModule) -> Iterator[Finding]:
        # object.__setattr__ is legitimate only inside __post_init__ (a
        # frozen dataclass normalising its own fields during init).
        func_stack: list[str] = []

        def visit(node: ast.AST) -> Iterator[Finding]:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                func_stack.append(node.name)
                for child in ast.iter_child_nodes(node):
                    yield from visit(child)
                func_stack.pop()
                return
            if (
                isinstance(node, ast.Call)
                and dotted_name(node.func) == "object.__setattr__"
                and (not func_stack or func_stack[-1] != "__post_init__")
            ):
                yield self.finding(
                    module,
                    node,
                    "object.__setattr__ outside __post_init__ bypasses the "
                    "frozen-dataclass guard — use dataclasses.replace",
                )
            for child in ast.iter_child_nodes(node):
                yield from visit(child)

        yield from visit(module.tree)

    def _check_field_assignments(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = node.targets
            else:
                continue
            for target in targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                ):
                    continue
                owner = target.value.id
                if owner in _SPEC_NAMES and target.attr in _RUNSPEC_FIELDS:
                    yield self.finding(
                        module,
                        node,
                        f"assignment to frozen RunSpec field "
                        f"{owner}.{target.attr} — use dataclasses.replace",
                    )
                elif owner in _RESULT_NAMES and target.attr in _RESULT_FIELDS:
                    yield self.finding(
                        module,
                        node,
                        f"assignment to BatchResult field "
                        f"{owner}.{target.attr} — results are immutable "
                        "records",
                    )
