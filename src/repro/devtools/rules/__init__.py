"""The repro-lint rule catalog.

Rules are instantiated fresh per run via :func:`all_rules`; each rule id
is documented (with rationale and examples) in ``docs/correctness.md``.

Shared helper: :func:`trial_path_classes` — the syntactic approximation
of "code that runs inside an engine trial": any class whose (in-module)
base-class chain mentions ``Protocol`` or ``Distribution``.  The base
abstractions themselves (``Protocol``, ``InputDistribution``) have no
such base and are deliberately excluded.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..lint import LintRule, SourceModule

__all__ = ["all_rules", "trial_path_classes", "base_names"]

#: A base-class name containing one of these marks a trial-path class.
_TRIAL_MARKERS = ("Protocol", "Distribution")


def base_names(node: ast.ClassDef) -> list[str]:
    """Syntactic base-class names (``Name`` ids / ``Attribute`` attrs)."""
    names = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


def trial_path_classes(module: SourceModule) -> set[ast.ClassDef]:
    """Classes whose instances run inside engine trials.

    A class qualifies when a base name contains ``Protocol`` or
    ``Distribution``, directly or through in-module ancestors.  This is a
    lint heuristic, not a proof: cross-module ancestry under a neutral
    name is invisible — acceptable, since every concrete protocol and
    distribution in this repo names its abstraction in its bases.
    """
    classes = [n for n in ast.walk(module.tree) if isinstance(n, ast.ClassDef)]
    by_name = {cls.name: cls for cls in classes}
    cache: dict[str, bool] = {}

    def qualifies(cls: ast.ClassDef, seen: frozenset[str]) -> bool:
        if cls.name in cache:
            return cache[cls.name]
        verdict = False
        for base in base_names(cls):
            if any(marker in base for marker in _TRIAL_MARKERS):
                verdict = True
                break
            parent = by_name.get(base)
            if parent is not None and base not in seen:
                if qualifies(parent, seen | {base}):
                    verdict = True
                    break
        cache[cls.name] = verdict
        return verdict

    return {cls for cls in classes if qualifies(cls, frozenset({cls.name}))}


def iter_calls_with_class(
    module: SourceModule,
) -> Iterator[tuple[ast.Call, "ast.ClassDef | None"]]:
    """Every Call node paired with its innermost enclosing class."""
    stack: list[ast.ClassDef] = []

    def visit(node: ast.AST) -> Iterator[tuple[ast.Call, "ast.ClassDef | None"]]:
        if isinstance(node, ast.ClassDef):
            stack.append(node)
            for child in ast.iter_child_nodes(node):
                yield from visit(child)
            stack.pop()
            return
        if isinstance(node, ast.Call):
            yield node, stack[-1] if stack else None
        for child in ast.iter_child_nodes(node):
            yield from visit(child)

    yield from visit(module.tree)


def all_rules() -> list[LintRule]:
    """The full catalog, in reporting order."""
    from .batching import BatchContractRule, CostModelContractRule
    from .concurrency import (
        BareAcquireRule,
        PickleQuarantineRule,
        SilentExceptRule,
    )
    from .determinism import AmbientRandomnessRule, FrozenSpecMutationRule

    return [
        AmbientRandomnessRule(),
        FrozenSpecMutationRule(),
        BatchContractRule(),
        CostModelContractRule(),
        PickleQuarantineRule(),
        BareAcquireRule(),
        SilentExceptRule(),
    ]
