"""Batched GF(2) kernels: whole trial batches in single numpy passes.

Monte-Carlo experiments in this reproduction execute the same small GF(2)
operation thousands of times — rank a fresh uniform matrix, multiply a
fresh seed by a shared secret, test span membership.  Doing that one
:class:`~repro.linalg.bitmatrix.BitMatrix` at a time pays the Python and
numpy dispatch overhead per trial.  This module stores a whole batch as a
single ``(batch, rows, words)`` uint64 array and runs each kernel once for
the entire batch:

* :class:`BitVectorBatch` / :class:`BitMatrixBatch` — bit-packed batches
  sharing the word layout of :mod:`repro.linalg.bitvec`.
* batched ``matvec`` / ``vecmat`` / ``matmul`` / ``transpose`` — one
  popcount or XOR-reduce broadcast over the batch axis.
* batched Gaussian-elimination :meth:`BitMatrixBatch.rank` — all matrices
  are eliminated in lock-step, one numpy pass per pivot column regardless
  of batch size.
* batched sampling — :meth:`BitMatrixBatch.random` (uniform) and
  :meth:`BitMatrixBatch.random_with_rank` (rank-conditioned, vectorized
  rejection).

Every batched kernel is bit-identical to mapping the scalar
``BitMatrix``/``BitVector`` implementation over the batch (property-tested
in ``tests/linalg/test_batch.py``), including ragged tail-word widths
(``n % 64 != 0``) and empty/degenerate shapes.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from .bitmatrix import _MATMUL_BLOCK_BYTES, BitMatrix, _transpose_words
from .bitvec import BitVector, _n_words, _pack_bits, _tail_mask, _unpack_bits

__all__ = ["BitVectorBatch", "BitMatrixBatch"]

_WORD_BITS = 64


class BitVectorBatch:
    """``batch`` bit-vectors of common length ``n``, packed as ``(batch, words)``.

    Parameters
    ----------
    batch, n:
        Number of vectors and bits per vector.
    words:
        Optional ``uint64`` backing store of shape ``(batch, ceil(n/64))``;
        used directly (not copied) when provided and must have all bits
        beyond position ``n - 1`` cleared in every row.
    """

    __slots__ = ("batch", "n", "words")

    def __init__(self, batch: int, n: int, words: np.ndarray | None = None):
        if batch < 0 or n < 0:
            raise ValueError(f"dimensions must be non-negative, got {batch}, {n}")
        self.batch = batch
        self.n = n
        expected = (batch, _n_words(n))
        if words is None:
            self.words = np.zeros(expected, dtype=np.uint64)
        else:
            if words.dtype != np.uint64 or words.shape != expected:
                raise ValueError(
                    f"backing store must be uint64{expected}, got "
                    f"{words.dtype}{words.shape}"
                )
            self.words = words

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def zeros(cls, batch: int, n: int) -> "BitVectorBatch":
        return cls(batch, n)

    @classmethod
    def random(
        cls, batch: int, n: int, rng: np.random.Generator
    ) -> "BitVectorBatch":
        """``batch`` independent uniform vectors of length ``n``."""
        words = rng.integers(
            0, 2**64, size=(batch, _n_words(n)), dtype=np.uint64, endpoint=False
        )
        words &= _tail_mask(n)[None, :]
        return cls(batch, n, words)

    @classmethod
    def from_arrays(cls, arr: np.ndarray) -> "BitVectorBatch":
        """Build from a ``(batch, n)`` array of 0/1 values."""
        arr = np.asarray(arr)
        if arr.ndim != 2:
            raise ValueError(f"expected a 2-D array, got shape {arr.shape}")
        bits = (arr != 0).astype(np.uint8)
        return cls(bits.shape[0], bits.shape[1], _pack_bits(bits))

    @classmethod
    def from_vectors(cls, vectors: Sequence[BitVector]) -> "BitVectorBatch":
        """Stack scalar bit-vectors (all of equal length)."""
        if not vectors:
            return cls(0, 0)
        n = vectors[0].n
        for v in vectors:
            if v.n != n:
                raise ValueError("all vectors must have the same length")
        return cls(len(vectors), n, np.stack([v.words for v in vectors]))

    # ------------------------------------------------------------------
    # Conversions / access
    # ------------------------------------------------------------------
    def to_arrays(self) -> np.ndarray:
        """Unpack into a ``uint8`` array of shape ``(batch, n)``."""
        return _unpack_bits(self.words, self.n)

    def __len__(self) -> int:
        return self.batch

    def __getitem__(self, index: int) -> BitVector:
        return BitVector(self.n, self.words[index].copy())

    def __iter__(self) -> Iterator[BitVector]:
        for index in range(self.batch):
            yield self[index]

    # ------------------------------------------------------------------
    # GF(2) arithmetic, one pass over the batch
    # ------------------------------------------------------------------
    def __xor__(self, other: "BitVectorBatch") -> "BitVectorBatch":
        self._check_like(other)
        return BitVectorBatch(self.batch, self.n, self.words ^ other.words)

    __add__ = __xor__

    def dots(self, other: "BitVectorBatch") -> np.ndarray:
        """Per-pair GF(2) inner products, shape ``(batch,)``."""
        self._check_like(other)
        return (
            np.bitwise_count(self.words & other.words).sum(axis=1).astype(np.int64)
            & 1
        )

    def weights(self) -> np.ndarray:
        """Per-vector Hamming weights, shape ``(batch,)``."""
        return np.bitwise_count(self.words).sum(axis=1).astype(np.int64)

    def _check_like(self, other: "BitVectorBatch") -> None:
        if self.batch != other.batch or self.n != other.n:
            raise ValueError(
                f"batch shape mismatch: ({self.batch}, {self.n}) vs "
                f"({other.batch}, {other.n})"
            )

    def __repr__(self) -> str:
        return f"BitVectorBatch(batch={self.batch}, n={self.n})"


class BitMatrixBatch:
    """``batch`` dense ``rows × cols`` GF(2) matrices, packed ``(batch, rows, words)``.

    Parameters
    ----------
    batch, rows, cols:
        Batch size and per-matrix dimensions.
    words:
        Optional ``uint64`` backing store of shape
        ``(batch, rows, ceil(cols/64))``; used directly (not copied) and
        must have all bits beyond column ``cols - 1`` cleared.
    """

    __slots__ = ("batch", "rows", "cols", "words")

    def __init__(
        self, batch: int, rows: int, cols: int, words: np.ndarray | None = None
    ):
        if batch < 0 or rows < 0 or cols < 0:
            raise ValueError(
                f"dimensions must be non-negative, got {batch}x{rows}x{cols}"
            )
        self.batch = batch
        self.rows = rows
        self.cols = cols
        expected = (batch, rows, _n_words(cols))
        if words is None:
            self.words = np.zeros(expected, dtype=np.uint64)
        else:
            if words.dtype != np.uint64 or words.shape != expected:
                raise ValueError(
                    f"backing store must be uint64{expected}, got "
                    f"{words.dtype}{words.shape}"
                )
            self.words = words

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def zeros(cls, batch: int, rows: int, cols: int) -> "BitMatrixBatch":
        return cls(batch, rows, cols)

    @classmethod
    def random(
        cls, batch: int, rows: int, cols: int, rng: np.random.Generator
    ) -> "BitMatrixBatch":
        """``batch`` independent uniform ``rows × cols`` GF(2) matrices."""
        words = rng.integers(
            0,
            2**64,
            size=(batch, rows, _n_words(cols)),
            dtype=np.uint64,
            endpoint=False,
        )
        words &= _tail_mask(cols)[None, None, :]
        return cls(batch, rows, cols, words)

    @classmethod
    def random_with_rank(
        cls,
        batch: int,
        rows: int,
        cols: int,
        r: int,
        rng: np.random.Generator,
        max_tries: int = 1000,
    ) -> "BitMatrixBatch":
        """``batch`` random matrices of rank exactly ``r``.

        Vectorized rejection: each round samples full batches of
        ``A_{rows×r} B_{r×cols}`` products and keeps the ones whose
        batched rank comes out exactly ``r``, resampling only the rejects.
        """
        if not 0 <= r <= min(rows, cols):
            raise ValueError(f"rank {r} impossible for {rows}x{cols}")
        out = cls.zeros(batch, rows, cols)
        if r == 0 or batch == 0:
            return out
        pending = np.arange(batch)
        for _ in range(max_tries):
            left = cls.random(pending.size, rows, r, rng)
            right = cls.random(pending.size, r, cols, rng)
            product = left.matmul(right)
            accepted = product.rank() == r
            out.words[pending[accepted]] = product.words[accepted]
            pending = pending[~accepted]
            if pending.size == 0:
                return out
        raise RuntimeError(
            f"failed to sample {batch} rank-{r} matrices in {max_tries} rounds"
        )

    @classmethod
    def from_arrays(cls, arr: np.ndarray) -> "BitMatrixBatch":
        """Build from a ``(batch, rows, cols)`` array of 0/1 values."""
        arr = np.asarray(arr)
        if arr.ndim != 3:
            raise ValueError(f"expected a 3-D array, got shape {arr.shape}")
        bits = (arr != 0).astype(np.uint8)
        batch, rows, cols = bits.shape
        return cls(batch, rows, cols, _pack_bits(bits))

    @classmethod
    def from_matrices(cls, matrices: Sequence[BitMatrix]) -> "BitMatrixBatch":
        """Stack scalar matrices (all of equal shape)."""
        if not matrices:
            return cls(0, 0, 0)
        rows, cols = matrices[0].rows, matrices[0].cols
        for m in matrices:
            if (m.rows, m.cols) != (rows, cols):
                raise ValueError("all matrices must have the same shape")
        return cls(len(matrices), rows, cols, np.stack([m.words for m in matrices]))

    # ------------------------------------------------------------------
    # Conversions / access
    # ------------------------------------------------------------------
    def to_arrays(self) -> np.ndarray:
        """Unpack into a ``uint8`` array of shape ``(batch, rows, cols)``."""
        return _unpack_bits(self.words, self.cols)

    def __len__(self) -> int:
        return self.batch

    def __getitem__(self, index: int) -> BitMatrix:
        return BitMatrix(self.rows, self.cols, self.words[index].copy())

    def __iter__(self) -> Iterator[BitMatrix]:
        for index in range(self.batch):
            yield self[index]

    # ------------------------------------------------------------------
    # GF(2) arithmetic, one pass over the batch
    # ------------------------------------------------------------------
    def __xor__(self, other: "BitMatrixBatch") -> "BitMatrixBatch":
        self._check_like(other)
        return BitMatrixBatch(self.batch, self.rows, self.cols, self.words ^ other.words)

    __add__ = __xor__

    def matvec(self, vecs: BitVectorBatch) -> BitVectorBatch:
        """Per-pair ``matrix @ vector``: batch of vectors of length ``rows``."""
        if vecs.batch != self.batch or vecs.n != self.cols:
            raise ValueError(
                f"vector batch ({vecs.batch}, {vecs.n}) does not match "
                f"matrix batch ({self.batch}, cols={self.cols})"
            )
        parities = (
            np.bitwise_count(self.words & vecs.words[:, None, :]).sum(axis=2) & 1
        ).astype(np.uint8)
        return BitVectorBatch(self.batch, self.rows, _pack_bits(parities))

    def vecmat(self, vecs: BitVectorBatch) -> BitVectorBatch:
        """Per-pair ``vector^T @ matrix`` — the PRG's per-processor tail.

        A masked XOR-reduce: each vector's one-bits select matrix rows,
        which are XORed down the row axis in one pass for the whole batch.
        """
        if vecs.batch != self.batch or vecs.n != self.rows:
            raise ValueError(
                f"vector batch ({vecs.batch}, {vecs.n}) does not match "
                f"matrix batch ({self.batch}, rows={self.rows})"
            )
        selected = _unpack_bits(vecs.words, self.rows).view(bool)
        masked = np.where(selected[:, :, None], self.words, np.uint64(0))
        return BitVectorBatch(
            self.batch, self.cols, np.bitwise_xor.reduce(masked, axis=1)
        )

    def matmul(self, other: "BitMatrixBatch") -> "BitMatrixBatch":
        """Per-pair matrix product ``self[b] @ other[b]`` over GF(2)."""
        if other.batch != self.batch:
            raise ValueError(f"batch mismatch: {self.batch} vs {other.batch}")
        if self.cols != other.rows:
            raise ValueError(
                f"inner dimension mismatch: {self.cols} vs {other.rows}"
            )
        other_t = other.transpose()
        n_words = self.words.shape[2]
        block = max(
            1,
            _MATMUL_BLOCK_BYTES
            // max(1, self.batch * self.rows * max(1, n_words) * 8),
        )
        parities = np.empty((self.batch, self.rows, other.cols), dtype=np.uint8)
        for start in range(0, other.cols, block):
            chunk = other_t.words[:, start : start + block]
            ands = self.words[:, :, None, :] & chunk[:, None, :, :]
            parities[:, :, start : start + block] = (
                np.bitwise_count(ands).sum(axis=3) & 1
            ).astype(np.uint8)
        return BitMatrixBatch(self.batch, self.rows, other.cols, _pack_bits(parities))

    def transpose(self) -> "BitMatrixBatch":
        """Per-matrix word-level transpose (64×64 bit-block swap network)."""
        return BitMatrixBatch(
            self.batch,
            self.cols,
            self.rows,
            _transpose_words(self.words, self.rows, self.cols),
        )

    # ------------------------------------------------------------------
    # Rank: lock-step Gaussian elimination
    # ------------------------------------------------------------------
    def rank(self) -> np.ndarray:
        """Per-matrix GF(2) rank, shape ``(batch,)``.

        All matrices are eliminated in lock-step (no physical row swaps;
        each matrix marks its pivot rows as settled), so the result is
        exactly the scalar :meth:`~repro.linalg.bitmatrix.BitMatrix.rank`
        of every batch element (property-tested).

        The elimination is blocked method-of-four-Russians style over
        byte groups of eight pivot columns:

        * within a group, only the **byte pane** carrying those eight bits
          is updated per column — pivot search and row clearing are
          (batch, rows) ``uint8`` passes, 1/8 the traffic of full words —
          while an eight-bit coefficient word per row records *which*
          pivot rows were XORed into it (``M8[r] ^= M8[p] ^ (1 << k)``,
          so coefficients always refer to group-start row values);
        * at group end the full-width update is replayed in one shot: a
          256-entry XOR table of pivot-row combinations is built per word
          by doubling (eight XOR passes), and every row applies its
          coefficient with a single table gather per word — ~8× fewer
          full-width passes than eliminating column by column.

        Passes are windowed to rows past the all-settled prefix and words
        from the current pivot word on (earlier columns are never
        revisited), and the word store is held words-first
        (``(words, batch, rows)``) so every pass is contiguous.
        """
        batch, n_rows, n_words = self.words.shape
        pivot = np.zeros(batch, dtype=np.int64)
        if batch == 0 or n_rows == 0 or self.cols == 0:
            return pivot
        work = np.ascontiguousarray(self.words.transpose(2, 0, 1))
        work_bytes = work.view(np.uint8)  # (words, batch, rows * 8)
        batch_idx = np.arange(batch)
        unsettled = np.full((batch, n_rows), np.uint8(0xFF), dtype=np.uint8)
        low = 0
        for base in range(0, self.cols, 8):
            if (pivot == n_rows).all():
                break
            group = min(8, self.cols - base)
            word, bit0 = divmod(base, _WORD_BITS)
            pane = np.ascontiguousarray(work_bytes[word, :, bit0 // 8 :: 8])
            window = n_rows - low
            coeffs = np.zeros((batch, window), dtype=np.uint8)
            pivot_of_slot = np.zeros((group, batch), dtype=np.intp)
            slot_found = np.zeros((group, batch), dtype=bool)
            any_elimination = False
            for k in range(group):
                # Candidate mask: sign-extend column bit k over its byte,
                # keep unsettled rows; the first candidate is the pivot.
                shift_up = np.uint8(7 - (bit0 + k) % 8)
                mask = ((pane[:, low:] << shift_up).view(np.int8) >> 7).view(
                    np.uint8
                )
                mask &= unsettled[:, low:]
                candidates = mask.view(bool)
                first = np.argmax(candidates, axis=1)
                found = candidates[batch_idx, first]
                if not found.any():
                    continue
                any_elimination = True
                pivot_of_slot[k] = first
                slot_found[k] = found
                mask[batch_idx, first] = np.uint8(0)
                pivot_bytes = pane[batch_idx, first + low]
                pane[:, low:] ^= pivot_bytes[:, None] & mask
                # Rows absorbing this pivot also absorb its pending
                # combination, so coefficients stay in group-start terms.
                combined = coeffs[batch_idx, first] ^ np.uint8(1 << k)
                coeffs ^= combined[:, None] & mask
                hit = np.nonzero(found)[0]
                unsettled[hit, first[hit] + low] = np.uint8(0)
                pivot[hit] += 1
            if any_elimination:
                # Replay the group's row operations at full width: XOR
                # tables of all 2^8 pivot-row combinations (built by
                # doubling from the group-start row values), then one
                # gather per word applies every row's coefficient.
                depth = n_words - word
                start_rows = work[word:, batch_idx[None, :], pivot_of_slot + low]
                start_rows = np.where(
                    slot_found[None, :, :], start_rows, np.uint64(0)
                )
                table = np.empty((depth, batch, 256), dtype=np.uint64)
                table[:, :, 0] = 0
                for i in range(group):
                    step = 1 << i
                    table[:, :, step : 2 * step] = (
                        table[:, :, :step] ^ start_rows[:, i, :, None]
                    )
                indices = coeffs.astype(np.intp)
                for w in range(depth):
                    work[word + w, :, low:] ^= np.take_along_axis(
                        table[w], indices, axis=1
                    )
            live = np.nonzero(unsettled[:, low:].any(axis=0))[0]
            low = low + (int(live[0]) if live.size else n_rows - low)
        return pivot

    def is_full_rank(self) -> np.ndarray:
        """Boolean array: which matrices have rank ``min(rows, cols)``."""
        return self.rank() == min(self.rows, self.cols)

    def _check_like(self, other: "BitMatrixBatch") -> None:
        if (self.batch, self.rows, self.cols) != (
            other.batch,
            other.rows,
            other.cols,
        ):
            raise ValueError(
                f"batch shape mismatch: ({self.batch}, {self.rows}, {self.cols})"
                f" vs ({other.batch}, {other.rows}, {other.cols})"
            )

    def __repr__(self) -> str:
        return (
            f"BitMatrixBatch(batch={self.batch}, rows={self.rows}, "
            f"cols={self.cols})"
        )
