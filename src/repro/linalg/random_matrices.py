"""Samplers for structured random GF(2) matrices.

Besides uniform matrices these samplers produce the *low-rank pseudo-random*
matrices at the heart of the paper: the PRG of Theorem 1.3 hands every
processor a row of the matrix ``[X | X M]`` where ``X`` is uniform
``n × k`` and ``M`` is a shared uniform ``k × (m-k)`` "secret".  The support
of that distribution is exactly the set of matrices whose last ``m - k``
columns lie in the span of the first ``k`` — which is what the seed-length
attack of Theorem 8.1 tests for.
"""

from __future__ import annotations

import numpy as np

from .bitmatrix import BitMatrix

__all__ = [
    "uniform_matrix",
    "prg_matrix",
    "rank_deficient_matrix",
    "matrix_with_rank",
]


def uniform_matrix(rows: int, cols: int, rng: np.random.Generator) -> BitMatrix:
    """A uniformly random ``rows × cols`` GF(2) matrix."""
    return BitMatrix.random(rows, cols, rng)


def prg_matrix(
    n: int, m: int, k: int, rng: np.random.Generator
) -> tuple[BitMatrix, BitMatrix, BitMatrix]:
    """Sample the joint PRG output of Theorem 1.3 for ``n`` processors.

    Each processor ``i`` holds seed row ``x_i ∈ {0,1}^k``; the shared secret
    is ``M ∈ {0,1}^{k×(m-k)}``; its pseudo-random string is ``(x_i, x_i^T M)``.

    Returns
    -------
    (output, seeds, secret):
        ``output`` is the ``n × m`` matrix of pseudo-random strings,
        ``seeds`` the ``n × k`` seed matrix ``X`` and ``secret`` the shared
        ``k × (m-k)`` matrix ``M``.
    """
    if not 0 < k <= m:
        raise ValueError(f"need 0 < k <= m, got k={k}, m={m}")
    seeds = BitMatrix.random(n, k, rng)
    secret = BitMatrix.random(k, m - k, rng)
    if m == k:
        return seeds.copy(), seeds, secret
    return seeds.hconcat(seeds.matmul(secret)), seeds, secret


def rank_deficient_matrix(n: int, rng: np.random.Generator) -> BitMatrix:
    """Sample from the close-to-uniform rank-``≤ n-1`` distribution of T1.4.

    This is the ``k = n - 1`` instance of the toy PRG: each row is
    ``(x, x·b)`` for a shared uniform ``b ∈ {0,1}^{n-1}``, so the final
    column is a linear combination of the others and the matrix can never
    have rank ``n``.
    """
    output, _, _ = prg_matrix(n, n, n - 1, rng)
    return output


def matrix_with_rank(
    n: int, m: int, r: int, rng: np.random.Generator, max_tries: int = 1000
) -> BitMatrix:
    """A random ``n × m`` matrix of rank exactly ``r`` (rejection-sampled
    product of uniform full-rank-whp factors ``A_{n×r} B_{r×m}``).

    For whole batches of rank-conditioned matrices use
    :meth:`~repro.linalg.batch.BitMatrixBatch.random_with_rank`, which
    vectorizes the same rejection loop.
    """
    if not 0 <= r <= min(n, m):
        raise ValueError(f"rank {r} impossible for {n}x{m}")
    if r == 0:
        return BitMatrix.zeros(n, m)
    for _ in range(max_tries):
        left = BitMatrix.random(n, r, rng)
        right = BitMatrix.random(r, m, rng)
        product = left.matmul(right)
        if product.rank() == r:
            return product
    raise RuntimeError(f"failed to sample a rank-{r} matrix in {max_tries} tries")
