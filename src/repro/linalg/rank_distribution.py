"""Rank statistics of uniformly random GF(2) matrices.

The average-case lower bound of Theorem 1.4 rests on the rank law of random
binary matrices (Kolchin [Kol99, Section 3.2]): the probability ``P_{n,s}``
that a uniform ``n × n`` matrix over GF(2) has rank ``n - s`` converges to

    Q_s = 2^{-s^2} * prod_{i >= s+1} (1 - 2^{-i}) * prod_{1 <= i <= s} (1 - 2^{-i})^{-1}

with ``Q_0 ≈ 0.288788…`` — the asymptotic probability of full rank.  This
module provides exact finite-``n`` rank probability mass functions and the
``Q_s`` limits, so the experiment for Theorem 1.4 can compare measured rank
frequencies with both, plus :func:`sample_rank_pmf` — an empirical rank
pmf whose trials run through the batched lock-step elimination of
:class:`~repro.linalg.batch.BitMatrixBatch` instead of one scalar rank per
sample.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from .batch import BitMatrixBatch

__all__ = [
    "count_matrices_of_rank",
    "rank_pmf",
    "full_rank_probability",
    "kolchin_q",
    "sample_rank_pmf",
    "Q0",
]

# Terms beyond 2^-60 are far below double-precision resolution.
_PRODUCT_CUTOFF = 60


@lru_cache(maxsize=None)
def count_matrices_of_rank(n: int, m: int, r: int) -> int:
    """Exact number of ``n × m`` GF(2) matrices of rank exactly ``r``.

    The classical counting formula is

        N(n, m, r) = prod_{i=0}^{r-1} (2^n - 2^i)(2^m - 2^i) / (2^r - 2^i)

    evaluated with exact integer arithmetic.
    """
    if r < 0 or r > min(n, m):
        return 0
    if r == 0:
        return 1
    numerator = 1
    denominator = 1
    for i in range(r):
        numerator *= (2**n - 2**i) * (2**m - 2**i)
        denominator *= 2**r - 2**i
    count, remainder = divmod(numerator, denominator)
    if remainder:
        raise AssertionError("rank-count formula did not divide evenly")
    return count


def rank_pmf(n: int, m: int | None = None) -> np.ndarray:
    """Exact pmf of the rank of a uniform ``n × m`` GF(2) matrix.

    Returns an array ``p`` of length ``min(n, m) + 1`` with
    ``p[r] = Pr[rank = r]``.
    """
    if m is None:
        m = n
    total = 2 ** (n * m)
    ranks = min(n, m)
    pmf = np.array(
        [count_matrices_of_rank(n, m, r) / total for r in range(ranks + 1)],
        dtype=float,
    )
    return pmf


def full_rank_probability(n: int, m: int | None = None) -> float:
    """Exact probability that a uniform ``n × m`` GF(2) matrix has full rank."""
    if m is None:
        m = n
    r = min(n, m)
    return count_matrices_of_rank(n, m, r) / 2 ** (n * m)


def sample_rank_pmf(
    n: int,
    trials: int,
    rng: np.random.Generator,
    m: int | None = None,
    batch_size: int = 512,
) -> np.ndarray:
    """Empirical rank pmf of uniform ``n × m`` GF(2) matrices.

    The Monte-Carlo counterpart of :func:`rank_pmf` for sizes where the
    exact formula's ``2^{nm}`` denominators are unusable.  Trials are drawn
    and eliminated in whole batches (one lock-step Gaussian elimination per
    ``batch_size`` matrices) rather than one scalar ``rank()`` per sample.

    Returns an array of length ``min(n, m) + 1`` whose entry ``r`` is the
    fraction of sampled matrices with rank ``r``.
    """
    if m is None:
        m = n
    if trials <= 0:
        raise ValueError("trial count must be positive")
    if batch_size <= 0:
        raise ValueError("batch size must be positive")
    counts = np.zeros(min(n, m) + 1, dtype=np.int64)
    remaining = trials
    while remaining:
        size = min(batch_size, remaining)
        ranks = BitMatrixBatch.random(size, n, m, rng).rank()
        counts += np.bincount(ranks, minlength=counts.shape[0])
        remaining -= size
    return counts / trials


def kolchin_q(s: int) -> float:
    """The limit ``Q_s = lim_n Pr[rank(uniform n×n) = n - s]``.

    ``Q_0 ≈ 0.2887880951`` is the asymptotic full-rank probability quoted in
    the proof of Theorem 1.4.
    """
    if s < 0:
        raise ValueError("corank must be non-negative")
    head = 2.0 ** (-(s * s))
    tail = 1.0
    for i in range(s + 1, _PRODUCT_CUTOFF):
        tail *= 1.0 - 2.0**-i
    correction = 1.0
    for i in range(1, s + 1):
        correction /= 1.0 - 2.0**-i
    return head * tail * correction


#: Asymptotic probability that a uniform square GF(2) matrix is invertible.
Q0: float = kolchin_q(0)
