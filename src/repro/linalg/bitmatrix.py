"""Bit-packed matrices over GF(2).

A :class:`BitMatrix` stores each row as packed 64-bit words (see
:mod:`repro.linalg.bitvec` for the packing convention).  It supports the
operations the reproduction needs:

* matrix–vector and matrix–matrix multiplication over GF(2),
* Gaussian-elimination rank (and rank of leading submatrices, used by the
  time-hierarchy function of Theorem 1.5),
* row access as :class:`~repro.linalg.bitvec.BitVector`,
* uniform random sampling.

Every kernel is word-level: ``np.bitwise_count`` provides hardware
popcount, conversions go through the vectorized pack/unpack helpers of
:mod:`repro.linalg.bitvec`, ``transpose`` runs the classic 64×64
bit-block swap network directly on the packed words, ``vecmat`` is a
masked XOR-reduce over the rows selected by the vector's one-bits, and
``matmul`` blocks its popcount temporary so large products stay
cache-sized.  For whole batches of matrices (Monte-Carlo trials), see
:mod:`repro.linalg.batch`.
"""

from __future__ import annotations

import numpy as np

from .bitvec import (
    BitVector,
    _n_words,
    _pack_bits,
    _splice_words,
    _tail_mask,
    _unpack_bits,
)

__all__ = ["BitMatrix"]

_WORD_BITS = 64

#: Cap on the ``rows × block × words`` popcount temporary used by matmul.
_MATMUL_BLOCK_BYTES = 1 << 22

#: Bit masks of the 64×64 block-transpose swap network (low halves of each
#: ``2j``-bit group), one per halving round.
_TRANSPOSE_MASKS = {
    32: np.uint64(0x00000000FFFFFFFF),
    16: np.uint64(0x0000FFFF0000FFFF),
    8: np.uint64(0x00FF00FF00FF00FF),
    4: np.uint64(0x0F0F0F0F0F0F0F0F),
    2: np.uint64(0x3333333333333333),
    1: np.uint64(0x5555555555555555),
}


def _transpose64_blocks(blocks: np.ndarray) -> np.ndarray:
    """Bit-transpose 64×64 blocks given as uint64 arrays of shape ``(..., 64)``.

    Bit ``j`` of ``blocks[..., i]`` is block element ``(i, j)``; the result
    has bit ``j`` of ``[..., i]`` equal to the input's element ``(j, i)``.
    This is the Hacker's-Delight swap network (mirrored for the
    LSB-first column convention), vectorized over all leading axes: six
    rounds of shift/mask/xor, independent of how many blocks there are.
    """
    out = np.ascontiguousarray(blocks).copy()
    lanes = np.arange(64)
    for j in (32, 16, 8, 4, 2, 1):
        mask = _TRANSPOSE_MASKS[j]
        k = np.nonzero((lanes & j) == 0)[0]
        a = out[..., k]
        b = out[..., k + j]
        swap = ((a >> np.uint64(j)) ^ b) & mask
        out[..., k] = a ^ (swap << np.uint64(j))
        out[..., k + j] = b ^ swap
    return out


def _transpose_words(words: np.ndarray, rows: int, cols: int) -> np.ndarray:
    """Word-level transpose of packed rows; broadcasts over leading axes.

    ``words`` has shape ``(..., rows, n_words(cols))``; the result has
    shape ``(..., cols, n_words(rows))``.  Rows are padded to a multiple
    of 64, carved into 64×64 bit blocks, and every block is transposed at
    once by :func:`_transpose64_blocks` — no ``to_array`` round-trip.
    """
    lead = words.shape[:-2]
    row_words = _n_words(rows)
    if rows == 0 or cols == 0:
        return np.zeros(lead + (cols, row_words), dtype=np.uint64)
    col_words = words.shape[-1]
    padded = np.zeros(lead + (row_words * 64, col_words), dtype=np.uint64)
    padded[..., :rows, :] = words
    blocks = padded.reshape(lead + (row_words, 64, col_words))
    blocks = np.moveaxis(blocks, -2, -1)  # (..., row_words, col_words, 64)
    transposed = _transpose64_blocks(blocks)
    out = np.moveaxis(transposed, -3, -1)  # (..., col_words, 64, row_words)
    out = out.reshape(lead + (col_words * 64, row_words))[..., :cols, :]
    return np.ascontiguousarray(out)


class BitMatrix:
    """A dense ``rows × cols`` matrix over GF(2) with bit-packed rows.

    Parameters
    ----------
    rows, cols:
        Matrix dimensions.
    words:
        Optional backing store of shape ``(rows, ceil(cols / 64))``; used
        directly (not copied) when provided.
    """

    __slots__ = ("rows", "cols", "words")

    def __init__(self, rows: int, cols: int, words: np.ndarray | None = None):
        if rows < 0 or cols < 0:
            raise ValueError(f"dimensions must be non-negative, got {rows}x{cols}")
        self.rows = rows
        self.cols = cols
        expected = (rows, _n_words(cols))
        if words is None:
            self.words = np.zeros(expected, dtype=np.uint64)
        else:
            if words.dtype != np.uint64 or words.shape != expected:
                raise ValueError(
                    f"backing store must be uint64{expected}, got "
                    f"{words.dtype}{words.shape}"
                )
            self.words = words

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def zeros(cls, rows: int, cols: int) -> "BitMatrix":
        return cls(rows, cols)

    @classmethod
    def identity(cls, n: int) -> "BitMatrix":
        mat = cls(n, n)
        if n:
            diag = np.arange(n)
            mat.words[diag, diag // _WORD_BITS] = np.uint64(1) << (
                diag % _WORD_BITS
            ).astype(np.uint64)
        return mat

    @classmethod
    def from_array(cls, arr: np.ndarray) -> "BitMatrix":
        """Build from a 2-D numpy array of 0/1 values."""
        arr = np.asarray(arr)
        if arr.ndim != 2:
            raise ValueError(f"expected a 2-D array, got shape {arr.shape}")
        bits = (arr != 0).astype(np.uint8)
        rows, cols = bits.shape
        return cls(rows, cols, _pack_bits(bits))

    @classmethod
    def from_rows(cls, rows: list[BitVector]) -> "BitMatrix":
        """Stack bit-vectors (all of equal length) as matrix rows."""
        if not rows:
            return cls(0, 0)
        cols = rows[0].n
        for r in rows:
            if r.n != cols:
                raise ValueError("all rows must have the same length")
        words = np.stack([r.words for r in rows])
        return cls(len(rows), cols, words)

    @classmethod
    def random(cls, rows: int, cols: int, rng: np.random.Generator) -> "BitMatrix":
        """A uniformly random ``rows × cols`` GF(2) matrix."""
        words = rng.integers(
            0, 2**64, size=(rows, _n_words(cols)), dtype=np.uint64, endpoint=False
        )
        words &= _tail_mask(cols)[None, :]
        return cls(rows, cols, words)

    # ------------------------------------------------------------------
    # Element / row access
    # ------------------------------------------------------------------
    def get(self, i: int, j: int) -> int:
        self._check_index(i, j)
        return (int(self.words[i, j // _WORD_BITS]) >> (j % _WORD_BITS)) & 1

    def set(self, i: int, j: int, bit: int) -> None:
        self._check_index(i, j)
        mask = np.uint64(1) << np.uint64(j % _WORD_BITS)
        if bit & 1:
            self.words[i, j // _WORD_BITS] |= mask
        else:
            self.words[i, j // _WORD_BITS] &= ~mask

    def row(self, i: int) -> BitVector:
        """Row ``i`` as a :class:`BitVector` (copies the backing words)."""
        if not 0 <= i < self.rows:
            raise IndexError(f"row {i} out of range for {self.rows} rows")
        return BitVector(self.cols, self.words[i].copy())

    def set_row(self, i: int, vec: BitVector) -> None:
        if vec.n != self.cols:
            raise ValueError(f"row length {vec.n} != {self.cols} columns")
        self.words[i] = vec.words

    def column(self, j: int) -> BitVector:
        """Column ``j`` as a :class:`BitVector` of length ``rows``."""
        if not 0 <= j < self.cols:
            raise IndexError(f"column {j} out of range for {self.cols} columns")
        bits = (
            (self.words[:, j // _WORD_BITS] >> np.uint64(j % _WORD_BITS))
            & np.uint64(1)
        ).astype(np.uint8)
        return BitVector(self.rows, _pack_bits(bits))

    def _check_index(self, i: int, j: int) -> None:
        if not (0 <= i < self.rows and 0 <= j < self.cols):
            raise IndexError(
                f"index ({i}, {j}) out of range for {self.rows}x{self.cols}"
            )

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_array(self) -> np.ndarray:
        """Unpack into a ``uint8`` array of shape ``(rows, cols)``."""
        return _unpack_bits(self.words, self.cols)

    def transpose(self) -> "BitMatrix":
        """Word-level transpose via the 64×64 bit-block swap network."""
        return BitMatrix(
            self.cols, self.rows, _transpose_words(self.words, self.rows, self.cols)
        )

    def copy(self) -> "BitMatrix":
        return BitMatrix(self.rows, self.cols, self.words.copy())

    def submatrix(self, rows: int, cols: int) -> "BitMatrix":
        """Leading ``rows × cols`` submatrix (slices words, masks the tail)."""
        if rows > self.rows or cols > self.cols:
            raise ValueError("submatrix larger than matrix")
        words = self.words[:rows, : _n_words(cols)] & _tail_mask(cols)[None, :]
        return BitMatrix(rows, cols, words)

    def hconcat(self, other: "BitMatrix") -> "BitMatrix":
        """Horizontal concatenation ``[self | other]`` (word-level splice)."""
        if self.rows != other.rows:
            raise ValueError(f"row mismatch: {self.rows} vs {other.rows}")
        return BitMatrix(
            self.rows,
            self.cols + other.cols,
            _splice_words(self.words, self.cols, other.words, other.cols),
        )

    # ------------------------------------------------------------------
    # GF(2) arithmetic
    # ------------------------------------------------------------------
    def __xor__(self, other: "BitMatrix") -> "BitMatrix":
        if (self.rows, self.cols) != (other.rows, other.cols):
            raise ValueError("shape mismatch")
        return BitMatrix(self.rows, self.cols, self.words ^ other.words)

    __add__ = __xor__

    def matvec(self, vec: BitVector) -> BitVector:
        """``self @ vec`` over GF(2) (vector of length ``rows``)."""
        if vec.n != self.cols:
            raise ValueError(f"vector length {vec.n} != {self.cols} columns")
        parities = np.bitwise_count(self.words & vec.words[None, :]).sum(axis=1) & 1
        return BitVector.from_array(parities.astype(np.uint8))

    def vecmat(self, vec: BitVector) -> BitVector:
        """``vec^T @ self`` over GF(2) (vector of length ``cols``).

        This is exactly the operation each processor performs in the PRG of
        Theorem 1.3: its pseudo-random tail is ``x^T M``.  Implemented as an
        XOR of the rows selected by the one-bits of ``vec``, which is fast
        for the packed representation.
        """
        if vec.n != self.rows:
            raise ValueError(f"vector length {vec.n} != {self.rows} rows")
        selected = _unpack_bits(vec.words, self.rows).view(bool)
        acc = np.bitwise_xor.reduce(self.words[selected], axis=0)
        return BitVector(self.cols, acc)

    def matmul(self, other: "BitMatrix") -> "BitMatrix":
        """Matrix product ``self @ other`` over GF(2)."""
        if self.cols != other.rows:
            raise ValueError(
                f"inner dimension mismatch: {self.cols} vs {other.rows}"
            )
        other_t = other.transpose()
        # result[i, j] = parity(popcount(self.row_words[i] & other_t.row_words[j])).
        # The popcount temporary is (rows × block × words); blocking the
        # output columns keeps it cache-sized instead of O(n^3) bytes.
        n_words = self.words.shape[1]
        block = max(1, _MATMUL_BLOCK_BYTES // max(1, self.rows * max(1, n_words) * 8))
        parities = np.empty((self.rows, other.cols), dtype=np.uint8)
        for start in range(0, other.cols, block):
            chunk = other_t.words[start : start + block]
            ands = self.words[:, None, :] & chunk[None, :, :]
            parities[:, start : start + block] = (
                np.bitwise_count(ands).sum(axis=2) & 1
            ).astype(np.uint8)
        return BitMatrix(self.rows, other.cols, _pack_bits(parities))

    # ------------------------------------------------------------------
    # Rank and elimination
    # ------------------------------------------------------------------
    def rank(self) -> int:
        """Rank over GF(2) via Gaussian elimination on packed rows."""
        work = self.words.copy()
        n_rows = self.rows
        pivot_row = 0
        for j in range(self.cols):
            if pivot_row >= n_rows:
                break
            word, bit = j // _WORD_BITS, np.uint64(j % _WORD_BITS)
            col_bits = (work[pivot_row:, word] >> bit) & np.uint64(1)
            hits = np.nonzero(col_bits)[0]
            if hits.size == 0:
                continue
            pivot = pivot_row + int(hits[0])
            if pivot != pivot_row:
                work[[pivot_row, pivot]] = work[[pivot, pivot_row]]
            # Clear column j in every row below the pivot.
            below = (work[pivot_row + 1 :, word] >> bit) & np.uint64(1)
            mask = below.astype(bool)
            work[pivot_row + 1 :][mask] ^= work[pivot_row]
            pivot_row += 1
        return pivot_row

    def is_full_rank(self) -> bool:
        """True iff the rank equals ``min(rows, cols)``."""
        return self.rank() == min(self.rows, self.cols)

    def row_space_contains(self, vec: BitVector) -> bool:
        """True iff ``vec`` lies in the row span of the matrix."""
        if vec.n != self.cols:
            raise ValueError(f"vector length {vec.n} != {self.cols} columns")
        base = self.rank()
        extended = BitMatrix(
            self.rows + 1,
            self.cols,
            np.vstack([self.words, vec.words[None, :]]),
        )
        return extended.rank() == base

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitMatrix):
            return NotImplemented
        return (
            self.rows == other.rows
            and self.cols == other.cols
            and bool(np.array_equal(self.words, other.words))
        )

    def __hash__(self) -> int:
        return hash((self.rows, self.cols, self.words.tobytes()))

    def __repr__(self) -> str:
        return f"BitMatrix({self.rows}x{self.cols})"
