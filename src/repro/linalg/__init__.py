"""GF(2) linear algebra substrate.

Bit-packed vectors and matrices over the two-element field
(:class:`BitVector` / :class:`BitMatrix`, fully word-level — no Python bit
loops), batched kernels that evaluate whole Monte-Carlo trial batches in
single numpy passes (:class:`BitVectorBatch` / :class:`BitMatrixBatch`,
including lock-step Gaussian-elimination rank), rank laws of random binary
matrices (exact finite-``n`` pmfs, Kolchin limits, and a batched empirical
sampler), and samplers for the structured matrices the paper's PRG
produces.
"""

from .bitvec import BitVector
from .bitmatrix import BitMatrix
from .batch import BitMatrixBatch, BitVectorBatch
from .rank_distribution import (
    Q0,
    count_matrices_of_rank,
    full_rank_probability,
    kolchin_q,
    rank_pmf,
    sample_rank_pmf,
)
from .random_matrices import (
    matrix_with_rank,
    prg_matrix,
    rank_deficient_matrix,
    uniform_matrix,
)

__all__ = [
    "BitVector",
    "BitMatrix",
    "BitVectorBatch",
    "BitMatrixBatch",
    "Q0",
    "count_matrices_of_rank",
    "full_rank_probability",
    "kolchin_q",
    "rank_pmf",
    "sample_rank_pmf",
    "matrix_with_rank",
    "prg_matrix",
    "rank_deficient_matrix",
    "uniform_matrix",
]
