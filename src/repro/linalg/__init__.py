"""GF(2) linear algebra substrate.

Bit-packed vectors and matrices over the two-element field, rank laws of
random binary matrices, and samplers for the structured matrices the paper's
PRG produces.
"""

from .bitvec import BitVector
from .bitmatrix import BitMatrix
from .rank_distribution import (
    Q0,
    count_matrices_of_rank,
    full_rank_probability,
    kolchin_q,
    rank_pmf,
)
from .random_matrices import (
    matrix_with_rank,
    prg_matrix,
    rank_deficient_matrix,
    uniform_matrix,
)

__all__ = [
    "BitVector",
    "BitMatrix",
    "Q0",
    "count_matrices_of_rank",
    "full_rank_probability",
    "kolchin_q",
    "rank_pmf",
    "matrix_with_rank",
    "prg_matrix",
    "rank_deficient_matrix",
    "uniform_matrix",
]
