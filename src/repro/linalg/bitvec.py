"""Bit-packed vectors over GF(2).

A :class:`BitVector` stores ``n`` bits packed into 64-bit words
(little-endian within each word: bit ``i`` lives in word ``i // 64`` at
position ``i % 64``).  All arithmetic is over the two-element field: addition
is XOR and multiplication is AND; the inner product is the parity of the
AND of the two operands.

These vectors are the work-horses of the pseudo-random generator of
Theorem 1.3 (each processor's output is ``(x, x^T M)`` for a shared matrix
``M``) and of the GF(2) rank computations behind the average-case lower
bound of Theorem 1.4.

Every conversion between the packed and unpacked representations goes
through :func:`_pack_bits` / :func:`_unpack_bits`, which use
``np.packbits``/``np.unpackbits`` with ``bitorder="little"`` — one numpy
pass regardless of length, no per-bit Python loops anywhere in this module.
The same helpers serve the batched kernels in :mod:`repro.linalg.batch`
(they operate along the last axis and broadcast over any leading ones).
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

__all__ = ["BitVector"]

_WORD_BITS = 64


def _n_words(n_bits: int) -> int:
    """Number of 64-bit words needed to hold ``n_bits`` bits."""
    return (n_bits + _WORD_BITS - 1) // _WORD_BITS


def _pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack 0/1 values along the last axis into little-endian uint64 words.

    ``bits`` may have any leading batch dimensions; the result replaces the
    last axis of length ``n`` with one of length ``ceil(n / 64)``.  Nonzero
    entries are treated as ones (``np.packbits`` semantics).
    """
    bits = np.ascontiguousarray(bits)
    packed = np.packbits(bits, axis=-1, bitorder="little")
    pad = _n_words(bits.shape[-1]) * 8 - packed.shape[-1]
    if pad:
        packed = np.concatenate(
            [packed, np.zeros(packed.shape[:-1] + (pad,), dtype=np.uint8)],
            axis=-1,
        )
    if packed.shape[-1] == 0:
        return np.zeros(packed.shape[:-1] + (0,), dtype=np.uint64)
    return packed.view("<u8").astype(np.uint64, copy=False)


def _unpack_bits(words: np.ndarray, n_bits: int) -> np.ndarray:
    """Unpack little-endian uint64 words (last axis) into ``n_bits`` 0/1 values.

    Inverse of :func:`_pack_bits`; broadcasts over leading batch dimensions.
    """
    words = np.ascontiguousarray(words)
    if words.shape[-1] == 0:
        return np.zeros(words.shape[:-1] + (n_bits,), dtype=np.uint8)
    as_bytes = words.astype("<u8", copy=False).view(np.uint8)
    return np.unpackbits(as_bytes, axis=-1, bitorder="little")[..., :n_bits]


def _splice_words(
    left: np.ndarray, n_left: int, right: np.ndarray, n_right: int
) -> np.ndarray:
    """Concatenate packed bit rows: ``left`` then ``right`` along the bit axis.

    Operands are word arrays whose last axis packs ``n_left`` / ``n_right``
    bits (tail bits clear); leading axes broadcast, so this serves both
    :meth:`BitVector.concat` and :meth:`BitMatrix.hconcat`.  ``right`` is
    spliced in with one broadcast shift-and-or — never per bit.
    """
    out = np.zeros(
        left.shape[:-1] + (_n_words(n_left + n_right),), dtype=np.uint64
    )
    out[..., : left.shape[-1]] = left
    base, shift = divmod(n_left, _WORD_BITS)
    n_right_words = right.shape[-1]
    if shift == 0:
        out[..., base : base + n_right_words] = right
    else:
        out[..., base : base + n_right_words] |= right << np.uint64(shift)
        high = right >> np.uint64(_WORD_BITS - shift)
        width = min(n_right_words, out.shape[-1] - (base + 1))
        out[..., base + 1 : base + 1 + width] |= high[..., :width]
    return out


def _tail_mask(n_bits: int) -> np.ndarray:
    """Word-array mask with ones exactly at the first ``n_bits`` positions."""
    words = _n_words(n_bits)
    mask = np.full(words, np.uint64(0xFFFFFFFFFFFFFFFF), dtype=np.uint64)
    rem = n_bits % _WORD_BITS
    if rem and words:
        mask[-1] = np.uint64((1 << rem) - 1)
    return mask


class BitVector:
    """An immutable-length vector of ``n`` bits over GF(2).

    Parameters
    ----------
    n:
        Number of bits.
    words:
        Optional pre-packed ``uint64`` array; it is used as backing store
        (not copied) and must have exactly ``ceil(n / 64)`` entries with all
        bits beyond position ``n - 1`` cleared.
    """

    __slots__ = ("n", "words")

    def __init__(self, n: int, words: np.ndarray | None = None):
        if n < 0:
            raise ValueError(f"bit length must be non-negative, got {n}")
        self.n = n
        if words is None:
            self.words = np.zeros(_n_words(n), dtype=np.uint64)
        else:
            if words.dtype != np.uint64 or words.shape != (_n_words(n),):
                raise ValueError(
                    f"backing store must be uint64[{_n_words(n)}], got "
                    f"{words.dtype}[{words.shape}]"
                )
            self.words = words

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def zeros(cls, n: int) -> "BitVector":
        """The all-zero vector of length ``n``."""
        return cls(n)

    @classmethod
    def ones(cls, n: int) -> "BitVector":
        """The all-one vector of length ``n``."""
        return cls(n, _tail_mask(n).copy())

    @classmethod
    def from_bits(cls, bits: Iterable[int]) -> "BitVector":
        """Build from an iterable of 0/1 integers."""
        arr = np.asarray(list(bits), dtype=np.uint8)
        return cls.from_array(arr)

    @classmethod
    def from_array(cls, arr: np.ndarray) -> "BitVector":
        """Build from a 1-D numpy array of 0/1 values."""
        arr = np.asarray(arr)
        if arr.ndim != 1:
            raise ValueError(f"expected a 1-D array, got shape {arr.shape}")
        bits = (arr != 0).astype(np.uint8)
        return cls(bits.shape[0], _pack_bits(bits))

    @classmethod
    def from_int(cls, value: int, n: int) -> "BitVector":
        """Build from a Python integer (bit ``i`` of ``value`` → entry ``i``)."""
        if value < 0:
            raise ValueError("value must be non-negative")
        if n < value.bit_length():
            raise ValueError(
                f"value needs {value.bit_length()} bits but n={n} requested"
            )
        raw = value.to_bytes(_n_words(n) * 8, "little")
        words = np.frombuffer(raw, dtype="<u8").astype(np.uint64)
        return cls(n, words)

    @classmethod
    def random(cls, n: int, rng: np.random.Generator) -> "BitVector":
        """A uniformly random vector of length ``n``."""
        words = rng.integers(
            0, 2**64, size=_n_words(n), dtype=np.uint64, endpoint=False
        )
        words &= _tail_mask(n)
        return cls(n, words)

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_array(self) -> np.ndarray:
        """Unpack into a ``uint8`` array of 0/1 values."""
        return _unpack_bits(self.words, self.n)

    def to_int(self) -> int:
        """Pack into a single Python integer (entry ``i`` → bit ``i``)."""
        return int.from_bytes(self.words.astype("<u8", copy=False).tobytes(), "little")

    # ------------------------------------------------------------------
    # Bit access
    # ------------------------------------------------------------------
    def __getitem__(self, i: int) -> int:
        if not 0 <= i < self.n:
            raise IndexError(f"bit index {i} out of range for length {self.n}")
        return (int(self.words[i // _WORD_BITS]) >> (i % _WORD_BITS)) & 1

    def __setitem__(self, i: int, bit: int) -> None:
        if not 0 <= i < self.n:
            raise IndexError(f"bit index {i} out of range for length {self.n}")
        mask = np.uint64(1) << np.uint64(i % _WORD_BITS)
        if bit & 1:
            self.words[i // _WORD_BITS] |= mask
        else:
            self.words[i // _WORD_BITS] &= ~mask

    def __len__(self) -> int:
        return self.n

    def __iter__(self) -> Iterator[int]:
        for i in range(self.n):
            yield self[i]

    # ------------------------------------------------------------------
    # GF(2) arithmetic
    # ------------------------------------------------------------------
    def __xor__(self, other: "BitVector") -> "BitVector":
        self._check_same_length(other)
        return BitVector(self.n, self.words ^ other.words)

    __add__ = __xor__  # addition over GF(2) is XOR

    def __and__(self, other: "BitVector") -> "BitVector":
        self._check_same_length(other)
        return BitVector(self.n, self.words & other.words)

    def dot(self, other: "BitVector") -> int:
        """Inner product over GF(2): parity of the AND of the two vectors."""
        self._check_same_length(other)
        return int(np.bitwise_count(self.words & other.words).sum() & 1)

    def weight(self) -> int:
        """Hamming weight (number of ones)."""
        return int(np.bitwise_count(self.words).sum())

    def is_zero(self) -> bool:
        """True iff every entry is zero."""
        return not self.words.any()

    def concat(self, other: "BitVector") -> "BitVector":
        """Concatenation ``(self, other)`` of length ``self.n + other.n``
        (word-level splice, no per-bit work)."""
        return BitVector(
            self.n + other.n,
            _splice_words(self.words, self.n, other.words, other.n),
        )

    def _check_same_length(self, other: "BitVector") -> None:
        if self.n != other.n:
            raise ValueError(f"length mismatch: {self.n} vs {other.n}")

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitVector):
            return NotImplemented
        return self.n == other.n and bool(np.array_equal(self.words, other.words))

    def __hash__(self) -> int:
        return hash((self.n, self.words.tobytes()))

    def copy(self) -> "BitVector":
        return BitVector(self.n, self.words.copy())

    def __repr__(self) -> str:
        if self.n <= 64:
            bits = "".join(str(b) for b in self)
            return f"BitVector({bits!r})"
        return f"BitVector(n={self.n}, weight={self.weight()})"
