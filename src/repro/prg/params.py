"""PRG parameter selection — Theorem 5.4 inverted for practitioners.

Given the clique size ``n``, the number of rounds ``j`` the surrounding
computation will run, the pseudo-random bits ``m`` each processor needs,
and a tolerable distinguishing error ``ε``, choose the seed length ``k``
and report the full cost sheet (rounds, coins, wire bits) of the
construction.  The constraints, straight from Theorem 5.4 and
Theorem 1.3:

* fooling horizon:   ``j ≤ k/10``                    → ``k ≥ 10·j``
* error budget:      ``2·j·n/2^{k/9} ≤ ε``           → ``k ≥ 9·log₂(2jn/ε)``
* output length:     ``m ≤ 2^{k/20}``                → ``k ≥ 20·log₂ m``
* base requirement:  ``k = Ω(log n)``                → ``k ≥ log₂ n``

Theorem 8.1 caps what is achievable: the PRG *will* be broken by a
``k + 1``-round attack, so :attr:`PRGParameters.security_margin` reports
the gap between the fooling horizon and the breaking round count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .attacks import attack_rounds
from .generator import matrix_prg_rounds, seed_bits_per_processor

__all__ = ["PRGParameters", "choose_parameters"]


@dataclass(frozen=True)
class PRGParameters:
    """A complete PRG cost sheet for concrete ``(n, m, j, ε)``."""

    n: int
    m: int
    j_rounds_fooled: int
    epsilon: float
    k: int
    construction_rounds: int
    private_bits_per_processor: int
    broadcast_bits_total: int
    breaking_rounds: int

    @property
    def security_margin(self) -> int:
        """Rounds between the fooling horizon and the breaking attack."""
        return self.breaking_rounds - self.j_rounds_fooled

    @property
    def stretch(self) -> float:
        """Output bits per private random bit consumed."""
        return self.m / self.private_bits_per_processor

    def summary(self) -> str:
        return (
            f"k={self.k}: fools {self.j_rounds_fooled} rounds at error "
            f"<= {self.epsilon:g}; constructed in {self.construction_rounds} "
            f"rounds with {self.private_bits_per_processor} coins/processor; "
            f"broken at {self.breaking_rounds} rounds"
        )


def choose_parameters(
    n: int, m: int, j_rounds: int, epsilon: float = None
) -> PRGParameters:
    """Choose the minimal seed length satisfying Theorem 5.4's constraints.

    Parameters
    ----------
    n:
        Number of processors.
    m:
        Pseudo-random bits needed per processor (``m ≥ 1``).
    j_rounds:
        Rounds of computation the PRG must fool.
    epsilon:
        Distinguishing-error budget (default ``1/n``, the definition's
        baseline).
    """
    if n < 2:
        raise ValueError("need at least two processors")
    if m < 1:
        raise ValueError("need at least one output bit")
    if j_rounds < 1:
        raise ValueError("must fool at least one round")
    if epsilon is None:
        epsilon = 1.0 / n
    if not 0 < epsilon < 1:
        raise ValueError("epsilon must lie in (0, 1)")

    k = max(
        10 * j_rounds,
        math.ceil(9 * math.log2(2 * j_rounds * n / epsilon)),
        math.ceil(20 * math.log2(max(2, m))),
        math.ceil(math.log2(n)),
    )
    # The construction needs m >= k; pad the output if the caller asked
    # for fewer bits than the seed itself provides for free.
    effective_m = max(m, k)
    rounds = matrix_prg_rounds(n, k, effective_m)
    return PRGParameters(
        n=n,
        m=effective_m,
        j_rounds_fooled=j_rounds,
        epsilon=epsilon,
        k=k,
        construction_rounds=rounds,
        private_bits_per_processor=seed_bits_per_processor(n, k, effective_m),
        broadcast_bits_total=k * (effective_m - k),
        breaking_rounds=attack_rounds(k),
    )
