"""The toy PRG (Section 5): one extra pseudo-random bit per processor.

Every processor privately samples a ``k``-bit seed ``x``.  A shared secret
``b ∈ {0,1}^k`` is assembled from broadcast private coins (``⌈k/n⌉`` rounds
of ``BCAST(1)``: in round ``r`` processor ``i`` contributes bit ``r·n+i``
of ``b``).  Each processor's pseudo-random string is ``(x, x·b)`` — its
seed plus one derived inner-product bit.

Theorems 5.1 and 5.3 show the joint output fools every
``j ≤ k/10``-round ``BCAST(1)`` protocol up to statistical distance
``O(j·n / 2^{k/9})``.
"""

from __future__ import annotations

import numpy as np

from ..core.processor import ProcessorContext
from ..core.protocol import Protocol

__all__ = ["ToyPRGProtocol", "toy_prg_rounds"]


def toy_prg_rounds(n: int, k: int) -> int:
    """Rounds of ``BCAST(1)`` needed to publish the ``k`` shared bits."""
    return -(-k // n)  # ceil(k / n)


class ToyPRGProtocol(Protocol):
    """Executable toy PRG.

    Each processor's output is a ``uint8`` array of ``k + 1`` bits:
    its private seed followed by the derived inner-product bit.  Private
    randomness drawn per processor: ``k`` seed bits plus however many of
    the shared bits it contributes (at most ``⌈k/n⌉``), i.e. ``O(k)``
    total, matching Theorem 1.3's accounting at ``m = k + 1``.

    The protocol ignores its input matrix — inputs exist so it can be
    composed in front of payload protocols that *do* read inputs.
    """

    def __init__(self, k: int):
        if k <= 0:
            raise ValueError("seed length k must be positive")
        self.k = k

    def num_rounds(self, n: int) -> int:
        return toy_prg_rounds(n, self.k)

    def setup(self, proc: ProcessorContext) -> None:
        proc.memory["prg_seed"] = proc.coins.draw_bits(self.k)

    def _share_index(self, proc: ProcessorContext, round_index: int) -> int:
        """Global index of the shared bit this processor emits this round."""
        return round_index * proc.n + proc.proc_id

    def broadcast(self, proc: ProcessorContext, round_index: int) -> int:
        if self._share_index(proc, round_index) < self.k:
            return proc.coins.draw_bit()
        return 0

    def shared_vector(self, proc: ProcessorContext) -> np.ndarray:
        """Reconstruct the public secret ``b`` from the transcript."""
        bits = np.zeros(self.k, dtype=np.uint8)
        for event in proc.transcript:
            index = event.round_index * proc.n + event.sender
            if index < self.k:
                bits[index] = event.message
        return bits

    def output(self, proc: ProcessorContext) -> np.ndarray:
        seed = proc.memory["prg_seed"]
        b = self.shared_vector(proc)
        seed_bits = np.array([seed[i] for i in range(self.k)], dtype=np.uint8)
        extra = np.uint8(int(seed_bits @ b) & 1)
        return np.concatenate([seed_bits, [extra]])
