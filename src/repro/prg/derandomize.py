"""Randomness-efficient compilation of protocols (Corollary 7.1).

Any ``j``-round randomized ``BCAST(1)`` protocol in which each processor
consumes up to ``R`` private random bits is compiled into an
``O(j + k·R/n)``-round protocol in which each processor flips only
``k + ⌈k·R/n⌉ = O(k)`` coins: first run the PRG of Theorem 1.3 with output
length ``m = k + R``, then run the payload protocol with its coin source
transparently replaced by the pseudo-random stream.

For the paper's headline setting — ``R ≤ n``, ``j = k = Ω(log n)`` — the
compiled protocol runs in ``O(k)`` rounds with ``O(k)`` random bits per
processor, and Theorem 5.4 guarantees the transcript (and hence output)
distribution moves by at most ``O(j·n/2^{k/9})`` in statistical distance.
"""

from __future__ import annotations

import contextlib
from dataclasses import replace
from typing import Any

from ..core.errors import ProtocolViolation
from ..core.processor import ProcessorContext
from ..core.protocol import Protocol
from ..core.randomness import ReplayCoins
from ..core.transcript import Transcript
from ..linalg.bitvec import BitVector
from .generator import MatrixPRGProtocol

__all__ = ["DerandomizedProtocol"]


def _rebased_transcript(transcript: Transcript, skip_rounds: int, n: int) -> Transcript:
    """A copy of ``transcript`` with the first ``skip_rounds`` rounds removed
    and round/turn indices renumbered from zero.

    The payload protocol must see the same local view it would have seen
    running stand-alone — protocols such as Appendix B's read specific
    round indices out of the transcript.
    """
    rebased = Transcript()
    skip_turns = skip_rounds * n
    for event in transcript:
        if event.round_index < skip_rounds:
            continue
        rebased.append(
            replace(
                event,
                turn=event.turn - skip_turns,
                round_index=event.round_index - skip_rounds,
            )
        )
    return rebased


class DerandomizedProtocol(Protocol):
    """Wrap ``payload`` so it draws its coins from the PRG.

    Parameters
    ----------
    payload:
        Any ``BCAST(1)`` protocol.  It may call ``proc.coins.draw_*`` for up
        to ``random_bits`` bits total per processor.
    k:
        PRG seed length (the security parameter: fools up to ``k/10``
        rounds).
    random_bits:
        The number of pseudo-random bits to provision per processor.
    """

    def __init__(self, payload: Protocol, k: int, random_bits: int):
        if payload.message_size != 1:
            raise ProtocolViolation(
                "the derandomization transform is stated for BCAST(1) payloads"
            )
        if random_bits < 0:
            raise ValueError("random_bits must be non-negative")
        self.payload = payload
        self.prg = MatrixPRGProtocol(k, k + random_bits)
        self.k = k
        self.random_bits = random_bits
        self.message_size = 1

    def num_rounds(self, n: int) -> int:
        return self.prg.num_rounds(n) + self.payload.num_rounds(n)

    def finished(self, n: int, transcript, completed_rounds: int) -> bool:
        prg_rounds = self.prg.num_rounds(n)
        if completed_rounds < prg_rounds:
            return False
        return self.payload.finished(
            n,
            _rebased_transcript(transcript, prg_rounds, n),
            completed_rounds - prg_rounds,
        )

    def setup(self, proc: ProcessorContext) -> None:
        self.prg.setup(proc)

    def _enter_payload(self, proc: ProcessorContext) -> None:
        """Swap coins for the pseudo-random stream and set up the payload."""
        if proc.memory.get("derand_entered"):
            return
        proc.memory["derand_entered"] = True
        pseudo_bits = self.prg.output(proc)
        proc.memory["derand_true_coins"] = proc.coins
        proc.coins = ReplayCoins(BitVector.from_array(pseudo_bits))
        self.payload.setup(proc)

    @contextlib.contextmanager
    def _payload_view(self, proc: ProcessorContext):
        """Temporarily present the payload's re-based transcript view."""
        original = proc.transcript
        proc.transcript = _rebased_transcript(
            original, self.prg.num_rounds(proc.n), proc.n
        )
        try:
            yield
        finally:
            proc.transcript = original

    def broadcast(self, proc: ProcessorContext, round_index: int) -> int:
        prg_rounds = self.prg.num_rounds(proc.n)
        if round_index < prg_rounds:
            return self.prg.broadcast(proc, round_index)
        self._enter_payload(proc)
        with self._payload_view(proc):
            return self.payload.broadcast(proc, round_index - prg_rounds)

    def receive(
        self, proc: ProcessorContext, round_index: int, messages: dict[int, int]
    ) -> None:
        prg_rounds = self.prg.num_rounds(proc.n)
        if round_index >= prg_rounds:
            with self._payload_view(proc):
                self.payload.receive(proc, round_index - prg_rounds, messages)

    def output(self, proc: ProcessorContext) -> Any:
        self._enter_payload(proc)
        with self._payload_view(proc):
            return self.payload.output(proc)

    def true_coins_used(self, proc: ProcessorContext) -> int:
        """Private coin flips actually consumed (seed + matrix share)."""
        source = proc.memory.get("derand_true_coins", proc.coins)
        return source.bits_used
