"""The paper's primary contribution: pseudo-random generators that fool the
Broadcast Congested Clique, the derandomization transform built on them, the
matching seed-length attack, and the Newman-style baseline."""

from .toy import ToyPRGProtocol, toy_prg_rounds
from .generator import MatrixPRGProtocol, matrix_prg_rounds, seed_bits_per_processor
from .derandomize import DerandomizedProtocol
from .attacks import SupportMembershipAttack, attack_rounds, false_positive_bound
from .params import PRGParameters, choose_parameters
from .newman import (
    NewmanCompiled,
    newman_family_size,
    newman_public_bits,
    simulation_error,
)

__all__ = [
    "ToyPRGProtocol",
    "toy_prg_rounds",
    "MatrixPRGProtocol",
    "matrix_prg_rounds",
    "seed_bits_per_processor",
    "DerandomizedProtocol",
    "SupportMembershipAttack",
    "attack_rounds",
    "false_positive_bound",
    "PRGParameters",
    "choose_parameters",
    "NewmanCompiled",
    "newman_family_size",
    "newman_public_bits",
    "simulation_error",
]
