"""The full PRG of Theorem 1.3.

Parameters ``(k, m)``: every processor ends with ``m`` pseudo-random bits
that fool every ``j ≤ k/10``-round ``BCAST(1)`` protocol (statistical
distance ``O(j·n/2^{k/9})``, Theorem 5.4), starting from ``O(k)`` private
random bits per processor.

Construction (verbatim from the paper):

1. each processor gets ``k + ⌈k·(m-k)/n⌉`` private random bits;
2. in ``⌈k·(m-k)/n⌉`` rounds of ``BCAST(1)`` all processors broadcast
   their extra bits, which everyone assembles (row-major) into the shared
   secret matrix ``M ∈ {0,1}^{k×(m-k)}``;
3. each processor outputs ``(x, x^T M)`` where ``x`` is its first ``k``
   private bits.

The shared matrix is *public*; the pseudo-randomness resides in each
processor's private seed ``x``, and the adversary's problem is that all
outputs secretly live in the same ``k``-dimensional affine structure.
"""

from __future__ import annotations

import numpy as np

from ..core.processor import ProcessorContext
from ..core.protocol import Protocol
from ..linalg.bitmatrix import BitMatrix
from ..linalg.bitvec import BitVector

__all__ = ["MatrixPRGProtocol", "matrix_prg_rounds", "seed_bits_per_processor"]


def matrix_prg_rounds(n: int, k: int, m: int) -> int:
    """``⌈k·(m-k)/n⌉`` rounds of ``BCAST(1)`` to publish the secret matrix."""
    shared = k * (m - k)
    return -(-shared // n) if shared else 0


def seed_bits_per_processor(n: int, k: int, m: int) -> int:
    """Private random bits each processor consumes: ``k`` seed bits plus its
    share of the matrix broadcast."""
    return k + matrix_prg_rounds(n, k, m)


class MatrixPRGProtocol(Protocol):
    """Executable full PRG (Theorem 1.3).

    Outputs per processor: a ``uint8`` array of ``m`` bits, ``(x, x^T M)``.
    The input matrix is ignored (compose with a payload protocol to use the
    bits).  After the run, :meth:`shared_matrix` reconstructs ``M`` from
    the transcript — every processor can do this, which is what makes the
    construction a *protocol* rather than an oracle.
    """

    def __init__(self, k: int, m: int):
        if k <= 0:
            raise ValueError("seed length k must be positive")
        if m < k:
            raise ValueError(f"output length m={m} must be at least k={k}")
        self.k = k
        self.m = m

    def num_rounds(self, n: int) -> int:
        return matrix_prg_rounds(n, self.k, self.m)

    @property
    def shared_bits_needed(self) -> int:
        return self.k * (self.m - self.k)

    def setup(self, proc: ProcessorContext) -> None:
        proc.memory["prg_seed"] = proc.coins.draw_bits(self.k)

    def broadcast(self, proc: ProcessorContext, round_index: int) -> int:
        if round_index * proc.n + proc.proc_id < self.shared_bits_needed:
            return proc.coins.draw_bit()
        return 0

    def shared_matrix(self, proc: ProcessorContext) -> BitMatrix:
        """Assemble the public secret ``M`` (row-major) from the transcript."""
        flat = np.zeros(self.shared_bits_needed, dtype=np.uint8)
        for event in proc.transcript:
            index = event.round_index * proc.n + event.sender
            if index < self.shared_bits_needed:
                flat[index] = event.message
        return BitMatrix.from_array(flat.reshape(self.k, self.m - self.k))

    def output(self, proc: ProcessorContext) -> np.ndarray:
        seed: BitVector = proc.memory["prg_seed"]
        if self.m == self.k:
            return seed.to_array()
        secret = self.shared_matrix(proc)
        # x^T M is a masked XOR-reduce over the packed secret rows; the
        # (x, x^T M) assembly stays word-level until the final unpack.
        return seed.concat(secret.vecmat(seed)).to_array()
