"""Newman's theorem in the Broadcast Congested Clique (Appendix A).

Theorem A.1: every randomized ``j``-round ``BCAST(1)`` protocol with ``n``
processors, ``m`` input bits each and ``k`` output bits each can be
``ε``-simulated using only ``O(k·n + log m + log 1/ε)`` *public* random
bits — by fixing, once and for all, ``T = Θ(ε^{-2}(nm + 2^{2jn}))``
random strings and having the protocol publicly select one of them
(``⌈log₂ T⌉`` public coins).

The catch the paper emphasises: the argument is non-constructive and
computationally inefficient (the good family of strings exists by a
Chernoff/union-bound argument but must be found by brute force), which is
what motivates the *efficient* PRG of Theorem 1.3.  We implement the
sampled-family compiler faithfully: pick the ``T`` strings at random (they
are good with probability ≥ 0.9) and measure the achieved simulation error
empirically.
"""

from __future__ import annotations

import copy
import math
from typing import Any

import numpy as np

from ..core.engine import (
    Engine,
    Executor,
    RunSpec,
    TrialResult,
    derive_seed,
    resolve_executor,
)
from ..core.protocol import Protocol
from ..core.randomness import PublicCoins, expand_seed
from ..core.simulator import ExecutionResult, run_protocol

__all__ = [
    "newman_family_size",
    "newman_public_bits",
    "NewmanCompiled",
    "simulation_error",
]


def newman_family_size(
    n: int, m: int, j: int, epsilon: float, cap: int = 1 << 20
) -> int:
    """The theorem's family size ``T = Θ(ε^{-2}(nm + 2^{2jn}))``, capped.

    The exponential term comes from union-bounding over all Boolean test
    functions on transcripts; experiments use far smaller ``T`` and measure
    the error directly.
    """
    if not 0 < epsilon < 1:
        raise ValueError("epsilon must lie in (0, 1)")
    exact = math.ceil((n * m + 2.0 ** min(60, 2 * j * n)) / (epsilon * epsilon))
    return min(cap, exact)


def newman_public_bits(t_family: int) -> int:
    """Public coins consumed by the compiled protocol: ``⌈log₂ T⌉``."""
    if t_family <= 0:
        raise ValueError("family size must be positive")
    return max(1, math.ceil(math.log2(t_family)))


class NewmanCompiled:
    """A protocol compiled to use ``⌈log₂ T⌉`` public coins.

    The compiled object is a *runner*, not a :class:`Protocol` subclass:
    selecting the shared string is a public-coin operation that happens
    before the first round, after which the original protocol runs
    unchanged with its private coin sources re-seeded deterministically
    from the selected string.  (All processors derive identical views of
    the selection, so no extra rounds are needed — public coins are free
    common knowledge in this model.)
    """

    def __init__(self, protocol: Protocol, t_family: int, master_seed: int = 0):
        if t_family <= 0:
            raise ValueError("family size must be positive")
        self.protocol = protocol
        self.t_family = t_family
        self.master_seed = master_seed
        # The fixed family of shared strings, chosen once (Theorem A.1
        # guarantees a random family is good with probability >= 0.9).
        family_rng = expand_seed(master_seed)
        self.family_seeds = [
            int(s) for s in family_rng.integers(0, 2**63, size=t_family)
        ]

    @property
    def public_bits(self) -> int:
        return newman_public_bits(self.t_family)

    def run(
        self,
        inputs: np.ndarray,
        rng: np.random.Generator,
        scheduler: str = "round",
    ) -> ExecutionResult:
        """One execution: draw the public index, replay family string ``i``."""
        public = PublicCoins(rng)
        index = public.draw_int(self.public_bits) % self.t_family
        replay_rng = expand_seed(self.family_seeds[index])
        result = run_protocol(
            self.protocol,
            inputs,
            scheduler=scheduler,
            rng=replay_rng,
            public_coins=public,
        )
        result.cost.public_bits = public.bits_used
        return result

    def run_batch(
        self,
        inputs: np.ndarray,
        trials: int,
        seed: int | np.random.SeedSequence | None = None,
        scheduler: str = "round",
        executor: Executor | str | None = None,
    ) -> list[ExecutionResult]:
        """``trials`` independent compiled executions on ``inputs``.

        Trial ``t`` is driven by child ``t`` of ``SeedSequence(seed)``, so
        (like :meth:`Engine.run_batch`) the result list is bit-identical
        across serial and parallel executors.
        """
        if isinstance(seed, np.random.SeedSequence):
            master = seed
        else:
            master = np.random.SeedSequence(seed)
        runner = _CompiledTrialRunner(self, inputs, scheduler)
        return resolve_executor(executor).map(runner, master.spawn(trials))


class _CompiledTrialRunner:
    """Batch-trial body: ``SeedSequence → ExecutionResult``.

    Carries the shared state (compiled protocol, inputs) on the callable —
    shipped to pool workers once per chunk, and surfaced by the executor's
    picklability pre-check so lambda-based protocols fall back to serial
    instead of crashing mid-map.
    """

    def __init__(self, compiled: NewmanCompiled, inputs: np.ndarray, scheduler: str):
        self.compiled = compiled
        self.inputs = inputs
        self.scheduler = scheduler

    def __call__(self, seed_seq: np.random.SeedSequence) -> ExecutionResult:
        # Every trial gets a private protocol copy (like Engine.run_batch's
        # fresh_protocol): protocols that cache state on ``self`` must not
        # leak it across trials, or serial and pooled runs diverge.  The
        # family seed list is shared via the shallow copy.
        compiled = copy.copy(self.compiled)
        compiled.protocol = copy.deepcopy(self.compiled.protocol)
        return compiled.run(
            self.inputs, np.random.default_rng(seed_seq), scheduler=self.scheduler
        )


def _transcript_key_statistic(result) -> Any:
    """Default comparison statistic: the transcript key.

    Works on :class:`ExecutionResult` and the engine's
    :class:`~repro.core.engine.TrialResult` whether or not the full
    transcript was recorded — every ``TrialResult`` carries its key, and
    the vectorized fast path synthesizes it without materialising a
    :class:`~repro.core.transcript.Transcript`.
    """
    transcript = getattr(result, "transcript", None)
    if transcript is not None:
        return transcript.key()
    return result.transcript_key


def simulation_error(
    protocol: Protocol,
    compiled: NewmanCompiled,
    inputs: np.ndarray,
    n_samples: int,
    rng: np.random.Generator,
    statistic=None,
    scheduler: str = "round",
    executor: Executor | str | None = None,
    vectorized: bool = False,
) -> float:
    """Empirical simulation error on a fixed input.

    Compares the distribution of ``statistic(result)`` (default: the
    transcript key) between the original protocol with fresh randomness and
    the compiled protocol, via plug-in total variation.  Both sample sets
    run through the execution engine; ``executor`` selects the backend.
    ``statistic`` uniformly receives a
    :class:`~repro.core.engine.TrialResult` (``outputs``, ``transcript``,
    ``cost``) for both sample sets.

    ``vectorized=True`` lets the *original-protocol* batch ride the
    engine's fast path when the protocol declares ``supports_batch_keys``
    and the default key statistic is used — bit-identical error values,
    no per-trial simulation.  (The compiled side always simulates: public
    coin draws cannot batch.)  A custom ``statistic`` needs recorded
    transcripts, which forces the scalar path.
    """
    custom_statistic = statistic is not None
    if statistic is None:
        statistic = _transcript_key_statistic
    spec = RunSpec(
        protocol=protocol,
        inputs=inputs,
        scheduler=scheduler,
        seed=derive_seed(rng),
        record_transcripts=custom_statistic,
        vectorized=vectorized,
    )
    batch_true = Engine(executor).run_batch(spec, n_samples)
    counts_true: dict[Any, int] = {}
    for trial in batch_true:
        key = statistic(trial)
        counts_true[key] = counts_true.get(key, 0) + 1
    counts_compiled: dict[Any, int] = {}
    compiled_results = compiled.run_batch(
        inputs,
        n_samples,
        seed=derive_seed(rng),
        scheduler=scheduler,
        executor=executor,
    )
    for index, result in enumerate(compiled_results):
        trial = TrialResult(
            trial_index=index,
            outputs=result.outputs,
            transcript_key=result.transcript.key(),
            cost=result.cost,
            transcript=result.transcript,
        )
        key = statistic(trial)
        counts_compiled[key] = counts_compiled.get(key, 0) + 1
    from ..infotheory.divergence import tv_from_counts

    return tv_from_counts(counts_true, counts_compiled)
